//! The load generator: drives a running server over real sockets with a
//! configurable request mix and open-loop rate, and reports throughput
//! and latency percentiles.
//!
//! The operation stream comes from `be2d-workload`: scenes from the
//! corpus generator, queries derived from the prefill corpus (so
//! searches resemble real partial-match traffic), and the op sequence
//! from a seeded [`RequestMix`] schedule — the same run is reproducible
//! byte-for-byte from the seed.
//!
//! [`RequestMix`]: be2d_workload::RequestMix

use crate::client::Client;
use be2d_geometry::Scene;
use be2d_workload::metrics::percentile;
use be2d_workload::{
    derive_queries, generate_scene, Corpus, CorpusConfig, Query, QueryKind, RequestKind,
    RequestMix, SceneConfig, Skew,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Parameters of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Total requests in the timed run.
    pub requests: usize,
    /// Concurrent connections (worker threads).
    pub connections: usize,
    /// Open-loop request rate in req/s across all connections; 0 means
    /// closed-loop (send as fast as responses return).
    pub rate: f64,
    /// The operation mix.
    pub mix: RequestMix,
    /// Master seed: scenes, queries and the op schedule all derive from
    /// it.
    pub seed: u64,
    /// Images inserted before the timed run starts, so searches have a
    /// corpus to hit.
    pub prefill: usize,
    /// Shape of generated scenes.
    pub scene: SceneConfig,
    /// Per-request socket timeout.
    pub timeout: Duration,
    /// Hot/cold skew for choosing edit targets and search queries.
    /// `Skew::with_stride(p, shards)` aims the hot edits at records
    /// owned by shard 0 of an `--shards shards` server, so hot-shard
    /// imbalance can be exercised on purpose (watch `/stats`
    /// `shard_records`).
    pub skew: Skew,
    /// When > 0, trigger a live `POST /admin/reshard` to this shard
    /// count mid-run — the hot-shard-split scenario: skewed traffic
    /// keeps flowing while the server migrates, and the run still has
    /// to finish error-free.
    pub reshard_to: usize,
    /// Requests completed before the reshard fires (with
    /// [`reshard_to`](Self::reshard_to) > 0).
    pub reshard_after: usize,
    /// Batch-size override sent with the reshard request (0 = server
    /// default).
    pub reshard_batch: usize,
    /// Drive the versioned `/v1/` API surface instead of the legacy
    /// (deprecated) paths.
    pub api_v1: bool,
    /// When > 0, every Nth search request sets `"trace": true` and the
    /// returned per-stage breakdown is folded into the report's `trace`
    /// section (0 = no tracing).
    pub trace_sample: usize,
    /// Scrape `GET /v1/metrics` at the start and end of the timed run
    /// and fold the counter deltas (requests by status class, bound
    /// pruning, planner skips) into the report's `metrics_delta`
    /// section.
    pub scrape_metrics: bool,
}

impl LoadgenConfig {
    /// Sensible defaults against `addr`: 1000 requests, 4 connections,
    /// closed loop, the serving mix, 64 prefill images.
    #[must_use]
    pub fn new(addr: SocketAddr) -> LoadgenConfig {
        LoadgenConfig {
            addr,
            requests: 1000,
            connections: 4,
            rate: 0.0,
            mix: RequestMix::serving_default(),
            seed: 42,
            prefill: 64,
            scene: SceneConfig::default(),
            timeout: Duration::from_secs(10),
            skew: Skew::uniform(),
            reshard_to: 0,
            reshard_after: 0,
            reshard_batch: 0,
            api_v1: false,
            trace_sample: 0,
            scrape_metrics: false,
        }
    }

    /// Prefixes `path` with `/v1` when the run drives the versioned
    /// API surface.
    #[must_use]
    pub fn api_path(&self, path: &str) -> String {
        if self.api_v1 {
            format!("/v1{path}")
        } else {
            path.to_owned()
        }
    }
}

/// Latency percentiles in milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
    /// Arithmetic mean.
    pub mean_ms: f64,
}

/// Per-stage server-side timings aggregated over the traced search
/// samples (`--trace-sample N`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStages {
    /// Traced searches whose breakdown was parsed.
    pub sampled: usize,
    /// Mean planner stage (shard pruning) in ms.
    pub planner_mean_ms: f64,
    /// Mean scatter stage (parallel fan-out wall-clock) in ms.
    pub scatter_mean_ms: f64,
    /// Mean gather stage (k-way merge) in ms.
    pub gather_mean_ms: f64,
    /// Mean server-side search total in ms.
    pub total_mean_ms: f64,
    /// Worst server-side search total in ms.
    pub total_max_ms: f64,
}

/// One parsed per-stage breakdown from a traced search response.
#[derive(Debug, Clone, Copy)]
struct TraceSample {
    planner_ms: f64,
    scatter_ms: f64,
    gather_ms: f64,
    total_ms: f64,
}

/// The run summary, serialised to `BENCH_server.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Fixed tag `"server"` for tooling that collects BENCH files.
    pub benchmark: String,
    /// Requests completed (success or error).
    pub requests: usize,
    /// Requests that failed (socket error or HTTP status >= 400).
    pub errors: usize,
    /// Wall-clock seconds of the timed run.
    pub elapsed_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles over successful requests.
    pub latency_ms: LatencySummary,
    /// The op mix, in `RequestMix` string form.
    pub mix: String,
    /// The target skew, in `Skew` string form (`"uniform"` when off).
    pub skew: String,
    /// Worker connections used.
    pub connections: usize,
    /// Configured open-loop rate (0 = closed loop).
    pub rate_rps: f64,
    /// The live-reshard target fired mid-run (0 = no reshard scenario).
    pub reshard_to: usize,
    /// Wall-clock milliseconds from the reshard request until `/stats`
    /// reported the migration finished (0 when no reshard ran).
    pub reshard_duration_ms: f64,
    /// Requests actually performed per kind (fallbacks included).
    pub by_kind: BTreeMap<String, u64>,
    /// Server-side per-stage timings over traced search samples
    /// (`None` when the run sampled no traces).
    pub trace: Option<TraceStages>,
    /// Server-side counter deltas over the timed run, from scraping
    /// `GET /v1/metrics` at start and end (`--scrape-metrics`; `None`
    /// when the run did not scrape or a scrape failed).
    pub metrics_delta: Option<MetricsDelta>,
}

/// Server-counter movement over one timed run: the difference between
/// a `GET /v1/metrics` scrape at run start and one at run end.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsDelta {
    /// Requests the server fully served during the run.
    pub requests: u64,
    /// 2xx responses during the run.
    pub responses_2xx: u64,
    /// 4xx responses during the run.
    pub responses_4xx: u64,
    /// 5xx responses during the run.
    pub responses_5xx: u64,
    /// Candidates two-stage retrieval pruned by score bound.
    pub bound_pruned: u64,
    /// Shards the scatter planner proved empty and skipped.
    pub planner_skipped: u64,
}

impl LoadgenReport {
    /// Serialises the report as JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialises")
    }

    /// Human-readable multi-line summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!(
            "{} requests in {:.2}s ({:.0} req/s), {} errors\n\
             latency p50 {:.2}ms  p95 {:.2}ms  p99 {:.2}ms  max {:.2}ms\n\
             mix {} over {} connections{}\n",
            self.requests,
            self.elapsed_s,
            self.throughput_rps,
            self.errors,
            self.latency_ms.p50_ms,
            self.latency_ms.p95_ms,
            self.latency_ms.p99_ms,
            self.latency_ms.max_ms,
            self.mix,
            self.connections,
            if self.rate_rps > 0.0 {
                format!(", open-loop {} req/s", self.rate_rps)
            } else {
                ", closed-loop".into()
            },
        );
        if self.skew != "uniform" {
            out.push_str(&format!("  target skew {}\n", self.skew));
        }
        if self.reshard_to > 0 {
            out.push_str(&format!(
                "  live reshard to {} shards finished in {:.0}ms mid-run\n",
                self.reshard_to, self.reshard_duration_ms
            ));
        }
        if let Some(trace) = &self.trace {
            out.push_str(&format!(
                "  server stages over {} traced searches: planner {:.3}ms  \
                 scatter {:.3}ms  gather {:.3}ms  total mean {:.3}ms / max {:.3}ms\n",
                trace.sampled,
                trace.planner_mean_ms,
                trace.scatter_mean_ms,
                trace.gather_mean_ms,
                trace.total_mean_ms,
                trace.total_max_ms,
            ));
        }
        if let Some(delta) = &self.metrics_delta {
            out.push_str(&format!(
                "  server counters over the run: requests {}  2xx {}  4xx {}  \
                 5xx {}  bound_pruned {}  planner_skips {}\n",
                delta.requests,
                delta.responses_2xx,
                delta.responses_4xx,
                delta.responses_5xx,
                delta.bound_pruned,
                delta.planner_skipped,
            ));
        }
        for (kind, count) in &self.by_kind {
            out.push_str(&format!("  {kind}: {count}\n"));
        }
        out
    }
}

/// JSON for the compact scene wire form the API accepts.
#[must_use]
pub fn scene_to_json(scene: &Scene) -> String {
    let objects: Vec<String> = scene
        .iter()
        .map(|o| {
            let m = o.mbr();
            format!(
                r#"{{"class":{:?},"mbr":[{},{},{},{}]}}"#,
                o.class().name(),
                m.x_begin(),
                m.x_end(),
                m.y_begin(),
                m.y_end()
            )
        })
        .collect();
    format!(
        r#"{{"width":{},"height":{},"objects":[{}]}}"#,
        scene.width(),
        scene.height(),
        objects.join(",")
    )
}

/// One owned image on the server: its id plus how many loadgen objects
/// were added to it (so object removals always have a real target).
struct OwnedImage {
    id: u64,
    added_objects: usize,
}

struct WorkerOutcome {
    latencies_ms: Vec<f64>,
    errors: usize,
    by_kind: BTreeMap<String, u64>,
    traces: Vec<TraceSample>,
}

/// Runs the load against an already-listening server.
///
/// # Errors
///
/// Returns the first prefill error; errors in the timed run are counted
/// in the report instead of aborting it.
///
/// # Panics
///
/// Panics when `connections` is 0.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    assert!(config.connections > 0, "need at least one connection");

    // Prefill corpus + derived queries: searches during the run look
    // like partial-icon / jittered-relation traffic against known
    // images.
    let corpus = Corpus::generate(
        &CorpusConfig {
            images: config.prefill.max(1),
            scene: config.scene,
        },
        config.seed,
    );
    let queries = derive_queries(
        &corpus,
        &[
            QueryKind::DropObjects {
                keep: (config.scene.objects / 2).max(1),
            },
            QueryKind::Jitter { max_delta: 12 },
        ],
        32,
        config.seed ^ 0x9e37,
    );
    {
        let mut client = Client::new(config.addr, config.timeout);
        for (id, scene) in corpus.iter() {
            let body = format!(
                r#"{{"name":"prefill-{id}","scene":{}}}"#,
                scene_to_json(scene)
            );
            let response = client.request("POST", &config.api_path("/images"), &body)?;
            if response.status != 201 {
                return Err(io::Error::other(format!(
                    "prefill insert failed with {}: {}",
                    response.status,
                    response.text()
                )));
            }
        }
    }

    // Counter scrape at run start: everything the prefill did is
    // excluded from the delta.
    let metrics_before = config
        .scrape_metrics
        .then(|| scrape_metrics(config))
        .flatten();

    // One deterministic op schedule, sliced round-robin across workers.
    let schedule = {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x517c);
        config.mix.schedule(config.requests, &mut rng)
    };
    let interval = if config.rate > 0.0 {
        Some(Duration::from_secs_f64(1.0 / config.rate))
    } else {
        None
    };

    let started = Instant::now();
    let completed = std::sync::atomic::AtomicUsize::new(0);
    let (outcomes, reshard_outcome) = std::thread::scope(|scope| {
        // The live-reshard scenario: once enough requests completed,
        // fire POST /admin/reshard and poll /stats until the migration
        // finishes — all while the workers keep the load flowing.
        let admin = (config.reshard_to > 0).then(|| {
            let completed = &completed;
            scope.spawn(move || run_reshard_trigger(config, completed))
        });
        let handles: Vec<_> = (0..config.connections)
            .map(|worker| {
                let schedule = &schedule;
                let queries = &queries;
                let completed = &completed;
                scope.spawn(move || {
                    run_worker(
                        config, worker, schedule, queries, started, interval, completed,
                    )
                })
            })
            .collect();
        let outcomes: Vec<WorkerOutcome> = handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect();
        let reshard_outcome = admin.map(|h| h.join().expect("reshard trigger panicked"));
        (outcomes, reshard_outcome)
    });
    let elapsed = started.elapsed();
    let metrics_delta = metrics_before
        .and_then(|before| scrape_metrics(config).map(|after| after.delta_since(&before)));

    let mut latencies: Vec<f64> = Vec::with_capacity(config.requests);
    let mut errors = 0usize;
    let mut by_kind: BTreeMap<String, u64> = BTreeMap::new();
    let mut traces: Vec<TraceSample> = Vec::new();
    for outcome in outcomes {
        latencies.extend(outcome.latencies_ms);
        errors += outcome.errors;
        for (kind, count) in outcome.by_kind {
            *by_kind.entry(kind).or_insert(0) += count;
        }
        traces.extend(outcome.traces);
    }
    let reshard_duration_ms = match reshard_outcome {
        Some(ReshardOutcome::Finished { duration_ms }) => duration_ms,
        Some(ReshardOutcome::Failed) => {
            // A reshard that never finished cleanly is a run failure:
            // CI's zero-error acceptance must catch it.
            errors += 1;
            0.0
        }
        None => 0.0,
    };
    latencies.sort_by(f64::total_cmp);

    let elapsed_s = elapsed.as_secs_f64().max(1e-9);
    Ok(LoadgenReport {
        benchmark: "server".into(),
        requests: config.requests,
        errors,
        elapsed_s,
        throughput_rps: config.requests as f64 / elapsed_s,
        latency_ms: LatencySummary {
            p50_ms: percentile(&latencies, 50.0),
            p95_ms: percentile(&latencies, 95.0),
            p99_ms: percentile(&latencies, 99.0),
            max_ms: latencies.last().copied().unwrap_or(0.0),
            mean_ms: if latencies.is_empty() {
                0.0
            } else {
                latencies.iter().sum::<f64>() / latencies.len() as f64
            },
        },
        mix: config.mix.to_string(),
        skew: config.skew.to_string(),
        connections: config.connections,
        rate_rps: config.rate,
        reshard_to: config.reshard_to,
        reshard_duration_ms,
        by_kind,
        trace: summarise_traces(&traces),
        metrics_delta,
    })
}

/// One scrape's worth of the counters the delta report tracks.
#[derive(Debug, Clone, Copy, Default)]
struct MetricsSnapshot {
    requests: u64,
    responses_2xx: u64,
    responses_4xx: u64,
    responses_5xx: u64,
    bound_pruned: u64,
    planner_skipped: u64,
}

impl MetricsSnapshot {
    /// Counter movement since `before` (saturating: a restarted server
    /// between scrapes yields zeros, not garbage).
    fn delta_since(&self, before: &MetricsSnapshot) -> MetricsDelta {
        MetricsDelta {
            requests: self.requests.saturating_sub(before.requests),
            responses_2xx: self.responses_2xx.saturating_sub(before.responses_2xx),
            responses_4xx: self.responses_4xx.saturating_sub(before.responses_4xx),
            responses_5xx: self.responses_5xx.saturating_sub(before.responses_5xx),
            bound_pruned: self.bound_pruned.saturating_sub(before.bound_pruned),
            planner_skipped: self.planner_skipped.saturating_sub(before.planner_skipped),
        }
    }
}

/// Scrapes `GET /v1/metrics` once; `None` on any transport or parse
/// failure (a failed scrape degrades the report, never the run).
fn scrape_metrics(config: &LoadgenConfig) -> Option<MetricsSnapshot> {
    let mut client = Client::new(config.addr, config.timeout);
    let response = client.request("GET", "/v1/metrics", "").ok()?;
    if response.status != 200 {
        return None;
    }
    Some(parse_metrics_snapshot(&response.text()))
}

/// Pulls the tracked counter samples out of one Prometheus text
/// exposition body.
fn parse_metrics_snapshot(text: &str) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(v) = value.parse::<u64>() else {
            continue;
        };
        match key {
            "be2d_http_requests_total" => snap.requests = v,
            "be2d_db_bound_pruned_total" => snap.bound_pruned = v,
            "be2d_db_planner_skipped_total" => snap.planner_skipped = v,
            k if k.starts_with("be2d_http_responses_total") => {
                if k.contains("class=\"2xx\"") {
                    snap.responses_2xx = v;
                } else if k.contains("class=\"4xx\"") {
                    snap.responses_4xx = v;
                } else if k.contains("class=\"5xx\"") {
                    snap.responses_5xx = v;
                }
            }
            _ => {}
        }
    }
    snap
}

/// Folds the collected per-stage breakdowns into the report section.
fn summarise_traces(traces: &[TraceSample]) -> Option<TraceStages> {
    if traces.is_empty() {
        return None;
    }
    let n = traces.len() as f64;
    let mean = |f: fn(&TraceSample) -> f64| traces.iter().map(f).sum::<f64>() / n;
    Some(TraceStages {
        sampled: traces.len(),
        planner_mean_ms: mean(|t| t.planner_ms),
        scatter_mean_ms: mean(|t| t.scatter_ms),
        gather_mean_ms: mean(|t| t.gather_ms),
        total_mean_ms: mean(|t| t.total_ms),
        total_max_ms: traces.iter().map(|t| t.total_ms).fold(0.0, f64::max),
    })
}

/// How the mid-run reshard trigger ended.
enum ReshardOutcome {
    /// `/stats` confirmed the migration finished after this many
    /// wall-clock milliseconds.
    Finished { duration_ms: f64 },
    /// The request failed or the migration never finished in time.
    Failed,
}

/// Waits for `reshard_after` completed requests, fires
/// `POST /admin/reshard`, then polls `/stats` until the migration
/// reports done.
fn run_reshard_trigger(
    config: &LoadgenConfig,
    completed: &std::sync::atomic::AtomicUsize,
) -> ReshardOutcome {
    use std::sync::atomic::Ordering;
    let after = config.reshard_after.min(config.requests);
    while completed.load(Ordering::Relaxed) < after {
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut client = Client::new(config.addr, config.timeout);
    let body = if config.reshard_batch > 0 {
        format!(
            r#"{{"shards":{},"batch":{}}}"#,
            config.reshard_to, config.reshard_batch
        )
    } else {
        format!(r#"{{"shards":{}}}"#, config.reshard_to)
    };
    let fired = Instant::now();
    let accepted = client
        .request("POST", &config.api_path("/admin/reshard"), &body)
        .map(|response| response.status == 202 || response.status == 200)
        .unwrap_or(false);
    if !accepted {
        return ReshardOutcome::Failed;
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    while Instant::now() < deadline {
        // Always the legacy endpoint: reshard_finished parses the flat
        // stats shape, which /v1/stats deliberately abandoned.
        if let Ok(response) = client.request("GET", "/stats", "") {
            if response.status == 200 && reshard_finished(&response.body, config.reshard_to) {
                return ReshardOutcome::Finished {
                    duration_ms: fired.elapsed().as_secs_f64() * 1e3,
                };
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    ReshardOutcome::Failed
}

/// Whether a `/stats` body says the migration to `to` shards is done.
fn reshard_finished(body: &[u8], to: usize) -> bool {
    let Ok(text) = std::str::from_utf8(body) else {
        return false;
    };
    let Ok(value) = serde_json::from_str::<Value>(text) else {
        return false;
    };
    let Some(map) = value.as_map() else {
        return false;
    };
    let lookup = |key: &str| map.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let inactive = matches!(lookup("reshard_active"), Some(Value::Bool(false)));
    let on_target = lookup("shards")
        .and_then(|v| u64::from_value(v).ok())
        .is_some_and(|shards| shards == to as u64);
    inactive && on_target
}

#[allow(clippy::too_many_arguments)]
fn run_worker(
    config: &LoadgenConfig,
    worker: usize,
    schedule: &[RequestKind],
    queries: &[Query],
    started: Instant,
    interval: Option<Duration>,
    completed: &std::sync::atomic::AtomicUsize,
) -> WorkerOutcome {
    let mut client = Client::new(config.addr, config.timeout);
    let mut rng = StdRng::seed_from_u64(config.seed ^ (worker as u64).wrapping_mul(0x85eb_ca6b));
    let mut owned: Vec<OwnedImage> = Vec::new();
    let mut outcome = WorkerOutcome {
        latencies_ms: Vec::new(),
        errors: 0,
        by_kind: BTreeMap::new(),
        traces: Vec::new(),
    };

    let mut index = worker;
    while index < schedule.len() {
        if let Some(interval) = interval {
            // Open loop: request `index` is due at start + index·interval,
            // regardless of how fast earlier responses came back.
            let due = started + interval.mul_checked(index);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        let kind = effective_kind(schedule[index], &owned);
        let sent = Instant::now();
        let ok = perform(
            config,
            &mut client,
            &mut rng,
            &mut owned,
            queries,
            index,
            kind,
            &mut outcome.traces,
        );
        let latency_ms = sent.elapsed().as_secs_f64() * 1e3;
        *outcome.by_kind.entry(kind.name().to_owned()).or_insert(0) += 1;
        if ok {
            outcome.latencies_ms.push(latency_ms);
        } else {
            outcome.errors += 1;
        }
        completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        index += config.connections;
    }
    outcome
}

/// Picks the target slot in `owned` under the configured skew.
///
/// Stride-mode skew is applied to the **record id**, not the list
/// position: a hot draw picks among owned images whose id is
/// `≡ 0 (mod stride)`, which — against a server routing records
/// `id % shards` with `shards == stride` — lands every hot edit on
/// shard 0. Prefix mode (and uniform) delegate to [`Skew::pick`] over
/// list positions, i.e. the oldest owned images run hot.
fn pick_owned(skew: &Skew, owned: &[OwnedImage], rng: &mut StdRng) -> usize {
    if skew.stride > 1 && !skew.is_uniform() {
        if rng.random_bool(skew.hot_probability) {
            let hot: Vec<usize> = owned
                .iter()
                .enumerate()
                .filter(|(_, img)| img.id % skew.stride as u64 == 0)
                .map(|(slot, _)| slot)
                .collect();
            if !hot.is_empty() {
                return hot[rng.random_range(0..hot.len())];
            }
        }
        return rng.random_range(0..owned.len());
    }
    skew.pick(owned.len(), rng)
}

/// Downgrades ops that need an owned image when the worker has none
/// (yet): they become inserts, keeping the run error-free by design.
fn effective_kind(kind: RequestKind, owned: &[OwnedImage]) -> RequestKind {
    match kind {
        RequestKind::RemoveImage | RequestKind::AddObject if owned.is_empty() => {
            RequestKind::InsertImage
        }
        RequestKind::RemoveObject if !owned.iter().any(|img| img.added_objects > 0) => {
            if owned.is_empty() {
                RequestKind::InsertImage
            } else {
                RequestKind::AddObject
            }
        }
        kind => kind,
    }
}

#[allow(clippy::too_many_arguments)]
fn perform(
    config: &LoadgenConfig,
    client: &mut Client,
    rng: &mut StdRng,
    owned: &mut Vec<OwnedImage>,
    queries: &[Query],
    index: usize,
    kind: RequestKind,
    traces: &mut Vec<TraceSample>,
) -> bool {
    let result = match kind {
        RequestKind::InsertImage => {
            let scene = generate_scene(&config.scene, rng);
            let body = format!(
                r#"{{"name":"lg-{index}","scene":{}}}"#,
                scene_to_json(&scene)
            );
            client
                .request("POST", &config.api_path("/images"), &body)
                .map(|response| {
                    let ok = response.status == 201;
                    if ok {
                        if let Some(id) = inserted_id(&response.body) {
                            owned.push(OwnedImage {
                                id,
                                added_objects: 0,
                            });
                        }
                    }
                    ok
                })
        }
        RequestKind::RemoveImage => {
            let slot = pick_owned(&config.skew, owned, rng);
            // Order-preserving removal: prefix-mode skew targets "the
            // oldest owned images", which swap_remove would scramble.
            let image = owned.remove(slot);
            client
                .request(
                    "DELETE",
                    &config.api_path(&format!("/images/{}", image.id)),
                    "",
                )
                .map(|response| response.status == 200)
        }
        RequestKind::AddObject => {
            let slot = pick_owned(&config.skew, owned, rng);
            let image = &mut owned[slot];
            let body = loadgen_object_body();
            let path = config.api_path(&format!("/images/{}/objects", image.id));
            client.request("POST", &path, &body).map(|response| {
                let ok = response.status == 200;
                if ok {
                    image.added_objects += 1;
                }
                ok
            })
        }
        RequestKind::RemoveObject => {
            let slot = owned
                .iter()
                .position(|img| img.added_objects > 0)
                .expect("effective_kind guarantees a target");
            let image = &mut owned[slot];
            let body = loadgen_object_body();
            let path = config.api_path(&format!("/images/{}/objects", image.id));
            client.request("DELETE", &path, &body).map(|response| {
                let ok = response.status == 200;
                if ok {
                    image.added_objects -= 1;
                }
                ok
            })
        }
        RequestKind::Search => {
            let slot = if config.skew.is_uniform() {
                index % queries.len()
            } else {
                config.skew.pick(queries.len(), rng)
            };
            let query = &queries[slot];
            // Every Nth search asks the server for its per-stage timing
            // breakdown; the parsed stages feed the report's `trace`
            // section. Rankings are identical either way.
            let traced = config.trace_sample > 0 && index.is_multiple_of(config.trace_sample);
            let body = format!(
                r#"{{"scene":{},"options":{{"top_k":10}}{}}}"#,
                scene_to_json(&query.scene),
                if traced { r#","trace":true"# } else { "" }
            );
            client
                .request("POST", &config.api_path("/search"), &body)
                .map(|response| {
                    let ok = response.status == 200;
                    if ok && traced {
                        if let Some(sample) = parse_trace(&response.body) {
                            traces.push(sample);
                        }
                    }
                    ok
                })
        }
        RequestKind::SearchSketch => {
            let sketches = [
                r#"{"sketch":"C0 left-of C1"}"#,
                r#"{"sketch":"C1 above C2; C0 left-of C2"}"#,
                r#"{"sketch":"C2 overlaps C3"}"#,
            ];
            let body = sketches[index % sketches.len()];
            client
                .request("POST", &config.api_path("/search/sketch"), body)
                .map(|response| response.status == 200)
        }
        RequestKind::Stats => client
            .request("GET", &config.api_path("/stats"), "")
            .map(|response| response.status == 200),
    };
    result.unwrap_or(false)
}

/// The fixed object every loadgen add/remove uses: tiny, in-frame for
/// any generated scene, and class-distinct from the corpus alphabet.
fn loadgen_object_body() -> String {
    r#"{"class":"LG","mbr":[0,3,0,3]}"#.to_owned()
}

/// Extracts the `"trace"` stage breakdown from a traced search
/// response body.
fn parse_trace(body: &[u8]) -> Option<TraceSample> {
    let text = std::str::from_utf8(body).ok()?;
    let value: Value = serde_json::from_str(text).ok()?;
    let lookup = |map: &[(String, Value)], key: &str| {
        map.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };
    let trace = lookup(value.as_map()?, "trace")?;
    let trace_map = trace.as_map()?.to_vec();
    let stage = |key: &str| lookup(&trace_map, key).and_then(|v| f64::from_value(&v).ok());
    Some(TraceSample {
        planner_ms: stage("planner_ms")?,
        scatter_ms: stage("scatter_ms")?,
        gather_ms: stage("gather_ms")?,
        total_ms: stage("total_ms")?,
    })
}

/// Extracts `"id"` from an insert response body.
fn inserted_id(body: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(body).ok()?;
    let value: Value = serde_json::from_str(text).ok()?;
    let map = value.as_map()?;
    map.iter().find_map(|(k, v)| {
        if k == "id" {
            u64::from_value(v).ok()
        } else {
            None
        }
    })
}

/// `Instant + Duration * n` without overflow panics.
trait MulChecked {
    fn mul_checked(self, n: usize) -> Duration;
}

impl MulChecked for Duration {
    #[allow(clippy::cast_possible_truncation)]
    fn mul_checked(self, n: usize) -> Duration {
        self.checked_mul(n as u32).unwrap_or(Duration::MAX / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use be2d_geometry::SceneBuilder;

    #[test]
    fn scene_json_matches_api_form() {
        let scene = SceneBuilder::new(64, 32)
            .object("A", (1, 5, 2, 6))
            .build()
            .unwrap();
        assert_eq!(
            scene_to_json(&scene),
            r#"{"width":64,"height":32,"objects":[{"class":"A","mbr":[1,5,2,6]}]}"#
        );
    }

    #[test]
    fn effective_kind_fallbacks() {
        let none: Vec<OwnedImage> = Vec::new();
        assert_eq!(
            effective_kind(RequestKind::RemoveImage, &none),
            RequestKind::InsertImage
        );
        assert_eq!(
            effective_kind(RequestKind::RemoveObject, &none),
            RequestKind::InsertImage
        );
        let plain = vec![OwnedImage {
            id: 0,
            added_objects: 0,
        }];
        assert_eq!(
            effective_kind(RequestKind::RemoveObject, &plain),
            RequestKind::AddObject
        );
        assert_eq!(
            effective_kind(RequestKind::RemoveImage, &plain),
            RequestKind::RemoveImage
        );
        let with_objects = vec![OwnedImage {
            id: 0,
            added_objects: 2,
        }];
        assert_eq!(
            effective_kind(RequestKind::RemoveObject, &with_objects),
            RequestKind::RemoveObject
        );
    }

    #[test]
    fn stride_skew_targets_ids_on_one_shard() {
        use rand::SeedableRng;
        let owned: Vec<OwnedImage> = (0..20)
            .map(|id| OwnedImage {
                id,
                added_objects: 0,
            })
            .collect();
        let skew = Skew::with_stride(1.0, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let slot = pick_owned(&skew, &owned, &mut rng);
            assert_eq!(owned[slot].id % 4, 0, "hot edits stay on shard 0's ids");
        }
        // prefix mode stays within bounds and favours the head
        let skew = Skew::new(0.95, 0.1).unwrap();
        let head = (0..400)
            .filter(|_| pick_owned(&skew, &owned, &mut rng) < 2)
            .count();
        assert!(head > 250, "prefix skew too weak: {head}/400");
    }

    #[test]
    fn inserted_id_parses_insert_response() {
        assert_eq!(
            inserted_id(br#"{"id":17,"name":"x","objects":3}"#),
            Some(17)
        );
        assert_eq!(inserted_id(b"not json"), None);
        assert_eq!(inserted_id(br#"{"name":"x"}"#), None);
    }

    #[test]
    fn report_serialises_with_kind_breakdown() {
        let report = LoadgenReport {
            benchmark: "server".into(),
            requests: 10,
            errors: 0,
            elapsed_s: 0.5,
            throughput_rps: 20.0,
            latency_ms: LatencySummary {
                p50_ms: 1.0,
                p95_ms: 2.0,
                p99_ms: 3.0,
                max_ms: 4.0,
                mean_ms: 1.5,
            },
            mix: "insert=1,search=3".into(),
            skew: "uniform".into(),
            connections: 2,
            rate_rps: 0.0,
            reshard_to: 8,
            reshard_duration_ms: 41.5,
            by_kind: [("search".to_owned(), 7u64), ("insert".to_owned(), 3u64)]
                .into_iter()
                .collect(),
            trace: Some(TraceStages {
                sampled: 4,
                planner_mean_ms: 0.01,
                scatter_mean_ms: 0.8,
                gather_mean_ms: 0.05,
                total_mean_ms: 0.9,
                total_max_ms: 1.4,
            }),
            metrics_delta: Some(MetricsDelta {
                requests: 12,
                responses_2xx: 10,
                responses_4xx: 1,
                responses_5xx: 0,
                bound_pruned: 42,
                planner_skipped: 5,
            }),
        };
        let json = report.to_json();
        assert!(json.contains("\"benchmark\":\"server\""), "{json}");
        assert!(json.contains("\"p99_ms\":3.0"), "{json}");
        assert!(json.contains("\"search\":7"), "{json}");
        assert!(json.contains("\"reshard_to\":8"), "{json}");
        assert!(json.contains("\"sampled\":4"), "{json}");
        assert!(json.contains("\"bound_pruned\":42"), "{json}");
        let summary = report.summary();
        assert!(summary.contains("closed-loop"), "{summary}");
        assert!(summary.contains("live reshard to 8 shards"), "{summary}");
        assert!(summary.contains("4 traced searches"), "{summary}");
        assert!(
            summary.contains("server counters over the run"),
            "{summary}"
        );
        assert!(summary.contains("bound_pruned 42"), "{summary}");
    }

    #[test]
    fn metrics_snapshot_parses_prometheus_exposition() {
        let text = "\
# HELP be2d_http_requests_total Requests accepted.\n\
# TYPE be2d_http_requests_total counter\n\
be2d_http_requests_total 120\n\
be2d_http_responses_total{class=\"2xx\"} 100\n\
be2d_http_responses_total{class=\"4xx\"} 15\n\
be2d_http_responses_total{class=\"5xx\"} 5\n\
be2d_db_bound_pruned_total 900\n\
be2d_db_planner_skipped_total 7\n\
be2d_http_request_seconds_bucket{le=\"0.001\"} 80\n\
garbage line without value\n";
        let snap = parse_metrics_snapshot(text);
        assert_eq!(snap.requests, 120);
        assert_eq!(snap.responses_2xx, 100);
        assert_eq!(snap.responses_4xx, 15);
        assert_eq!(snap.responses_5xx, 5);
        assert_eq!(snap.bound_pruned, 900);
        assert_eq!(snap.planner_skipped, 7);

        let before = MetricsSnapshot {
            requests: 100,
            responses_2xx: 90,
            responses_4xx: 20, // counter went "backwards": saturates to 0
            responses_5xx: 1,
            bound_pruned: 400,
            planner_skipped: 7,
        };
        let delta = snap.delta_since(&before);
        assert_eq!(delta.requests, 20);
        assert_eq!(delta.responses_2xx, 10);
        assert_eq!(delta.responses_4xx, 0);
        assert_eq!(delta.responses_5xx, 4);
        assert_eq!(delta.bound_pruned, 500);
        assert_eq!(delta.planner_skipped, 0);
    }

    #[test]
    fn parse_trace_reads_stage_breakdowns() {
        let body = br#"{"hits":[],"trace":{"planner_ms":0.01,"scatter_ms":1.5,
            "gather_ms":0.2,"total_ms":1.8,"shards":[]}}"#;
        let sample = parse_trace(body).expect("parses");
        assert!((sample.total_ms - 1.8).abs() < 1e-12);
        assert!((sample.scatter_ms - 1.5).abs() < 1e-12);
        assert!(parse_trace(br#"{"hits":[]}"#).is_none(), "untraced body");
        assert!(parse_trace(b"not json").is_none());
    }

    #[test]
    fn reshard_finished_parses_stats_bodies() {
        assert!(reshard_finished(
            br#"{"shards":8,"reshard_active":false,"records":10}"#,
            8
        ));
        assert!(!reshard_finished(
            br#"{"shards":8,"reshard_active":true}"#,
            8
        ));
        assert!(!reshard_finished(
            br#"{"shards":4,"reshard_active":false}"#,
            8
        ));
        assert!(!reshard_finished(b"not json", 8));
    }
}
