//! A tiny blocking HTTP/1.1 client, enough to drive the service over
//! real sockets: keep-alive, `Content-Length` responses, JSON bodies.
//!
//! Used by the load generator and the integration tests; not a general
//! HTTP client.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Whether the server announced `connection: close`.
    pub close: bool,
    /// Response headers, names lower-cased, in wire order.
    pub headers: Vec<(String, String)>,
}

impl ClientResponse {
    /// The body as UTF-8 text (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The first header with this (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to the server.
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
}

impl Client {
    /// Creates a client for `addr` (connects lazily).
    #[must_use]
    pub fn new(addr: SocketAddr, timeout: Duration) -> Client {
        Client {
            addr,
            timeout,
            stream: None,
            buf: Vec::new(),
        }
    }

    /// Sends one request and reads the response. Reconnects
    /// transparently when the previous keep-alive connection was closed
    /// by the server (e.g. after its per-connection request budget).
    ///
    /// # Errors
    ///
    /// Propagates socket errors once a fresh connection also fails.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<ClientResponse> {
        let reused = self.stream.is_some();
        match self.request_once(method, path, body) {
            Ok(response) => Ok(response),
            Err(_) if reused => {
                // Stale keep-alive connection (e.g. the server closed it
                // after its request budget): retry once on a fresh one.
                self.stream = None;
                self.buf.clear();
                self.request_once(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn request_once(&mut self, method: &str, path: &str, body: &str) -> io::Result<ClientResponse> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
            self.buf.clear();
        }
        let stream = self.stream.as_mut().expect("connected above");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: be2d\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let write = stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body.as_bytes()));
        if let Err(e) = write {
            self.stream = None;
            return Err(e);
        }
        match read_response(stream, &mut self.buf) {
            Ok(response) => {
                if response.close {
                    self.stream = None;
                    self.buf.clear();
                }
                Ok(response)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }
}

/// Reads one `Content-Length`-framed response from the stream.
fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> io::Result<ClientResponse> {
    let mut chunk = [0u8; 8 * 1024];
    loop {
        if let Some(response) = try_parse_response(buf)? {
            return Ok(response);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before a full response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn try_parse_response(buf: &mut Vec<u8>) -> io::Result<Option<ClientResponse>> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4) else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line {status_line:?}"),
            )
        })?;
    let mut content_length = 0usize;
    let mut close = false;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad content-length {value:?}"),
                )
            })?;
        } else if name == "connection" {
            close = value.eq_ignore_ascii_case("close");
        }
        headers.push((name, value.to_owned()));
    }
    let total = head_end + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let body = buf[head_end..total].to_vec();
    buf.drain(..total);
    Ok(Some(ClientResponse {
        status,
        body,
        close,
        headers,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_framed_response() {
        let mut buf =
            b"HTTP/1.1 200 OK\r\ncontent-length: 4\r\nconnection: keep-alive\r\n\r\nbodyNEXT"
                .to_vec();
        let response = try_parse_response(&mut buf).unwrap().unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"body");
        assert!(!response.close);
        assert_eq!(response.header("Content-Length"), Some("4"));
        assert_eq!(response.header("x-missing"), None);
        assert_eq!(buf, b"NEXT", "pipelined tail preserved");
    }

    #[test]
    fn incomplete_response_waits() {
        let mut buf = b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nhalf".to_vec();
        assert_eq!(try_parse_response(&mut buf).unwrap(), None);
    }

    #[test]
    fn close_and_errors() {
        let mut buf =
            b"HTTP/1.1 503 Service Unavailable\r\nconnection: close\r\ncontent-length: 0\r\n\r\n"
                .to_vec();
        let response = try_parse_response(&mut buf).unwrap().unwrap();
        assert_eq!(response.status, 503);
        assert!(response.close);

        let mut buf = b"NOT HTTP\r\n\r\n".to_vec();
        assert!(try_parse_response(&mut buf).is_err());
    }
}
