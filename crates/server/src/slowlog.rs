//! Bounded slow-query ring: retains the top-k worst traced queries.
//!
//! Every search produces a [`QueryTrace`](be2d_db::QueryTrace); the
//! handlers offer each one here. The fast path is a single relaxed
//! atomic load — a query cheaper than the current floor (the fastest
//! retained entry once the ring is full) touches no lock at all, so
//! steady-state traffic pays nothing. Only a query slow enough to
//! displace a retained entry takes the mutex.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One retained query.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowQueryEntry {
    /// Query kind: `"scene"`, `"text"`, or `"sketch"`.
    pub kind: &'static str,
    /// End-to-end duration in nanoseconds (the ranking key).
    pub total_ns: u64,
    /// Planner stage in nanoseconds.
    pub planner_ns: u64,
    /// Scatter stage in nanoseconds.
    pub scatter_ns: u64,
    /// Gather stage in nanoseconds.
    pub gather_ns: u64,
    /// Hits returned.
    pub hits: usize,
    /// The request's `top_k` (None = unbounded).
    pub top_k: Option<usize>,
    /// Server uptime when the query finished, in seconds.
    pub at_uptime_s: f64,
}

/// A bounded ring retaining the `capacity` slowest queries seen.
#[derive(Debug)]
pub struct SlowQueryLog {
    capacity: usize,
    /// The smallest retained `total_ns` once the ring is full; 0 until
    /// then, so everything qualifies. Updated under the mutex, read
    /// lock-free as the admission fast path.
    floor_ns: AtomicU64,
    entries: Mutex<Vec<SlowQueryEntry>>,
}

impl SlowQueryLog {
    /// A ring retaining at most `capacity` entries (0 disables it).
    #[must_use]
    pub fn new(capacity: usize) -> SlowQueryLog {
        SlowQueryLog {
            capacity,
            floor_ns: AtomicU64::new(0),
            entries: Mutex::new(Vec::with_capacity(capacity.min(256))),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers one finished query. Queries at or below the current floor
    /// return after one atomic load; qualifying queries take the mutex,
    /// displace the fastest retained entry, and raise the floor.
    pub fn offer(&self, entry: SlowQueryEntry) {
        if self.capacity == 0 || entry.total_ns <= self.floor_ns.load(Ordering::Relaxed) {
            return;
        }
        let mut entries = self.entries.lock().expect("slow-query ring poisoned");
        // Re-check under the lock: a concurrent offer may have raised
        // the floor past this entry while we waited.
        if entries.len() >= self.capacity {
            let floor = self.floor_ns.load(Ordering::Relaxed);
            if entry.total_ns <= floor {
                return;
            }
            let (min_idx, _) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.total_ns)
                .expect("ring is non-empty at capacity");
            entries.swap_remove(min_idx);
        }
        entries.push(entry);
        if entries.len() >= self.capacity {
            let new_floor = entries
                .iter()
                .map(|e| e.total_ns)
                .min()
                .expect("ring is non-empty");
            self.floor_ns.store(new_floor, Ordering::Relaxed);
        }
    }

    /// The retained queries, slowest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SlowQueryEntry> {
        let mut entries = self
            .entries
            .lock()
            .expect("slow-query ring poisoned")
            .clone();
        entries.sort_by_key(|e| std::cmp::Reverse(e.total_ns));
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(total_ns: u64) -> SlowQueryEntry {
        SlowQueryEntry {
            kind: "scene",
            total_ns,
            planner_ns: 0,
            scatter_ns: total_ns / 2,
            gather_ns: 0,
            hits: 1,
            top_k: Some(10),
            at_uptime_s: 0.0,
        }
    }

    #[test]
    fn retains_the_top_k_worst() {
        let log = SlowQueryLog::new(3);
        for total in [5, 1, 9, 3, 7, 2, 8] {
            log.offer(entry(total));
        }
        let kept: Vec<u64> = log.snapshot().iter().map(|e| e.total_ns).collect();
        assert_eq!(kept, vec![9, 8, 7]);
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let log = SlowQueryLog::new(0);
        log.offer(entry(100));
        assert!(log.snapshot().is_empty());
    }

    #[test]
    fn concurrent_offers_keep_the_global_worst() {
        let log = std::sync::Arc::new(SlowQueryLog::new(8));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let log = std::sync::Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        log.offer(entry(t * 1_000 + i + 1));
                    }
                });
            }
        });
        let kept: Vec<u64> = log.snapshot().iter().map(|e| e.total_ns).collect();
        assert_eq!(kept.len(), 8);
        // The global worst 8 are 3993..=4000 (thread 3's tail).
        assert_eq!(kept, (3993..=4000).rev().collect::<Vec<u64>>());
    }
}
