//! The health engine: rolling request windows, per-subsystem verdicts,
//! and the `/v1/health` rollup.
//!
//! Lifetime counters cannot answer "is the service healthy *now*", so
//! the server keeps [`ServerWindows`] — rolling 1-second epochs of
//! request latency, volume, and 5xx counts, rotated by the background
//! health ticker — and evaluates them (plus the database's replica,
//! replication-lag, reshard, and WAL state) into one
//! [`HealthReport`]: a per-subsystem [`Verdict`] with a
//! machine-readable reason, rolled up to the worst verdict overall.
//!
//! The split between `/healthz` and `/v1/health` is deliberate:
//! `/healthz` is the load-balancer contract (can this node serve at
//! all — 503 only when a shard has **zero** healthy replicas), while
//! `/v1/health` is the operator/advisor view with the full breakdown.

use crate::config::ServerConfig;
use be2d_db::ReplicatedImageDatabase;
use be2d_metrics::{HistogramSnapshot, WindowedCounter, WindowedHistogram};
use std::time::Duration;

/// Length of one rolling-window epoch.
pub const WINDOW_EPOCH: Duration = Duration::from_secs(1);
/// Epoch slots kept per window ring (`WINDOW_SLOTS × WINDOW_EPOCH` =
/// the longest answerable window, 5 minutes).
pub const WINDOW_SLOTS: usize = 300;
/// Epochs in the 10-second window.
pub const W10S: usize = 10;
/// Epochs in the 1-minute window.
pub const W1M: usize = 60;
/// Epochs in the 5-minute window.
pub const W5M: usize = 300;
/// Requests a window must contain before its SLO verdict counts — an
/// idle service is healthy, not in breach.
pub const SLO_MIN_SAMPLES: u64 = 20;

/// The server's rolling request windows: latency, volume, and 5xx
/// counts over the last [`WINDOW_SLOTS`] seconds. Recording rides the
/// same code path as the cumulative HTTP metrics; the background
/// health ticker rotates all three rings once per [`WINDOW_EPOCH`].
#[derive(Debug)]
pub struct ServerWindows {
    latency: WindowedHistogram,
    requests: WindowedCounter,
    errors_5xx: WindowedCounter,
}

impl Default for ServerWindows {
    fn default() -> Self {
        ServerWindows::new()
    }
}

impl ServerWindows {
    /// Fresh, empty windows.
    #[must_use]
    pub fn new() -> ServerWindows {
        ServerWindows {
            latency: WindowedHistogram::new(WINDOW_SLOTS, WINDOW_EPOCH),
            requests: WindowedCounter::new(WINDOW_SLOTS, WINDOW_EPOCH),
            errors_5xx: WindowedCounter::new(WINDOW_SLOTS, WINDOW_EPOCH),
        }
    }

    /// Records one served request into the current epoch.
    pub fn observe(&self, status: u16, elapsed: Duration) {
        self.latency.record(elapsed);
        self.requests.inc();
        if status >= 500 {
            self.errors_5xx.inc();
        }
    }

    /// Rotates all rings by one epoch (called by the health ticker).
    pub fn tick(&self) {
        self.latency.tick();
        self.requests.tick();
        self.errors_5xx.tick();
    }

    /// One window's aggregate view over the most recent `epochs`.
    #[must_use]
    pub fn summary(&self, epochs: usize) -> WindowSummary {
        let snap = self.latency.window(epochs);
        let requests = self.requests.window(epochs);
        let errors_5xx = self.errors_5xx.window(epochs);
        WindowSummary {
            requests,
            rate_rps: self.requests.rate_per_sec(epochs),
            errors_5xx,
            error_ratio: if requests == 0 {
                0.0
            } else {
                errors_5xx as f64 / requests as f64
            },
            latency: snap,
        }
    }
}

/// Aggregates of one rolling window: request volume and rate, 5xx
/// counts and ratio, and the latency distribution.
#[derive(Debug, Clone)]
pub struct WindowSummary {
    /// Requests served in the window.
    pub requests: u64,
    /// Mean requests per second over the window.
    pub rate_rps: f64,
    /// Responses with status ≥ 500 in the window.
    pub errors_5xx: u64,
    /// `errors_5xx / requests` (0 when idle).
    pub error_ratio: f64,
    /// The window's merged latency distribution.
    pub latency: HistogramSnapshot,
}

/// A subsystem's (or the whole service's) health state, ordered by
/// severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Operating normally.
    Ok,
    /// Serving correctly but impaired (partial replica loss, SLO burn,
    /// migration in flight).
    Degraded,
    /// Unable to serve some or all requests correctly.
    Critical,
}

impl Verdict {
    /// Stable lowercase name (`"ok"`, `"degraded"`, `"critical"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Degraded => "degraded",
            Verdict::Critical => "critical",
        }
    }
}

/// One subsystem's verdict and why.
#[derive(Debug, Clone)]
pub struct Subsystem {
    /// Stable subsystem name (`"shards"`, `"replicas"`,
    /// `"replication"`, `"wal"`, `"slo"`).
    pub name: &'static str,
    /// The verdict.
    pub verdict: Verdict,
    /// Machine-readable reason (stable `key=value` phrases).
    pub reason: String,
}

/// The `/v1/health` rollup: every subsystem plus the worst verdict.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// The worst subsystem verdict.
    pub status: Verdict,
    /// Per-subsystem breakdown, in stable order.
    pub subsystems: Vec<Subsystem>,
}

/// Replica-health verdict from the raw health bits: [`Verdict::Ok`]
/// when every replica is healthy, [`Verdict::Degraded`] on partial
/// loss, [`Verdict::Critical`] when any shard has **zero** healthy
/// replicas (that shard can only answer errors). Also the `/healthz`
/// 503 decision.
#[must_use]
pub fn replica_verdict(health: &[Vec<bool>]) -> (Verdict, String) {
    let mut failed = 0usize;
    let mut total = 0usize;
    let mut dead_shards: Vec<usize> = Vec::new();
    for (shard, replicas) in health.iter().enumerate() {
        total += replicas.len();
        let healthy = replicas.iter().filter(|&&h| h).count();
        failed += replicas.len() - healthy;
        if healthy == 0 {
            dead_shards.push(shard);
        }
    }
    if !dead_shards.is_empty() {
        let shards = dead_shards
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        return (
            Verdict::Critical,
            format!("no_healthy_replica shards={shards}"),
        );
    }
    if failed > 0 {
        return (
            Verdict::Degraded,
            format!("failed_replicas={failed} of={total}"),
        );
    }
    (Verdict::Ok, format!("replicas={total}"))
}

/// Replication-lag verdict: worst healthy-replica lag against the
/// op-log window. Past half the window a heal is at risk of falling
/// back to a full clone (degraded); at or past the full window it
/// certainly will (critical for the subsystem, though serving
/// continues).
#[must_use]
pub fn lag_verdict(max_lag: u64, oplog_window: usize) -> (Verdict, String) {
    let window = oplog_window.max(1) as u64;
    let verdict = if max_lag >= window {
        Verdict::Critical
    } else if max_lag > window / 2 {
        Verdict::Degraded
    } else {
        Verdict::Ok
    };
    (verdict, format!("max_lag={max_lag} window={window}"))
}

/// SLO verdict over one window against the configured targets:
/// latency p99 above target or a 5xx ratio above the error budget is
/// a burn (degraded); a 5xx ratio ten times the budget (or past 50%)
/// is critical. Windows with fewer than [`SLO_MIN_SAMPLES`] requests
/// are always `ok` — an idle service is not in breach.
#[must_use]
pub fn slo_verdict(
    summary: &WindowSummary,
    p99_target: Duration,
    availability: f64,
) -> (Verdict, String) {
    if summary.requests < SLO_MIN_SAMPLES {
        return (
            Verdict::Ok,
            format!("samples={} min={SLO_MIN_SAMPLES}", summary.requests),
        );
    }
    let p99 = summary.latency.quantile(0.99);
    let target_ns = p99_target.as_nanos().min(u128::from(u64::MAX)) as u64;
    let budget = (1.0 - availability.clamp(0.0, 1.0)).max(1e-9);
    let burn = summary.error_ratio / budget;
    let p99_ms = p99 as f64 / 1e6;
    let target_ms = target_ns as f64 / 1e6;
    let detail = format!(
        "p99_ms={p99_ms:.2} target_ms={target_ms:.2} error_ratio={:.4} budget={budget:.4}",
        summary.error_ratio
    );
    if burn >= 10.0 || summary.error_ratio >= 0.5 {
        (Verdict::Critical, detail)
    } else if burn > 1.0 || p99 > target_ns {
        (Verdict::Degraded, detail)
    } else {
        (Verdict::Ok, detail)
    }
}

/// Evaluates every subsystem against the database and the rolling
/// windows, rolling up to the worst verdict. The 1-minute window
/// drives the SLO verdict: long enough to smooth bursts, short enough
/// that a real burn surfaces while it is still happening.
#[must_use]
pub fn evaluate(
    db: &ReplicatedImageDatabase,
    windows: &ServerWindows,
    config: &ServerConfig,
) -> HealthReport {
    let reshard = db.reshard_progress();
    let shards = if reshard.active {
        Subsystem {
            name: "shards",
            verdict: Verdict::Degraded,
            reason: format!(
                "resharding from={} to={} migrated_ids={} total_ids={}",
                reshard.from, reshard.to, reshard.migrated_ids, reshard.total_ids
            ),
        }
    } else {
        Subsystem {
            name: "shards",
            verdict: Verdict::Ok,
            reason: format!("shards={}", db.shard_count()),
        }
    };

    let (verdict, reason) = replica_verdict(&db.replica_health());
    let replicas = Subsystem {
        name: "replicas",
        verdict,
        reason,
    };

    let replication_stats = db.replication_stats();
    let max_lag = replication_stats
        .shards
        .iter()
        .flat_map(|s| s.replicas.iter())
        .filter(|r| r.healthy)
        .map(|r| r.lag)
        .max()
        .unwrap_or(0);
    let (verdict, reason) = lag_verdict(max_lag, config.oplog_window);
    let replication = Subsystem {
        name: "replication",
        verdict,
        reason,
    };

    let wal = match db.oplog_stats().wal {
        Some(w) => Subsystem {
            name: "wal",
            verdict: Verdict::Ok,
            reason: format!(
                "appended={} fsyncs={} truncations={}",
                w.appended, w.fsyncs, w.truncations
            ),
        },
        None => Subsystem {
            name: "wal",
            verdict: Verdict::Ok,
            reason: "disabled".into(),
        },
    };

    let (verdict, reason) = slo_verdict(
        &windows.summary(W1M),
        config.slo_p99,
        config.slo_availability,
    );
    let slo = Subsystem {
        name: "slo",
        verdict,
        reason,
    };

    let subsystems = vec![shards, replicas, replication, wal, slo];
    let status = subsystems
        .iter()
        .map(|s| s.verdict)
        .max()
        .unwrap_or(Verdict::Ok);
    HealthReport { status, subsystems }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_verdicts_cover_all_three_states() {
        let (v, r) = replica_verdict(&[vec![true, true], vec![true, true]]);
        assert_eq!(v, Verdict::Ok);
        assert!(r.contains("replicas=4"), "{r}");

        let (v, r) = replica_verdict(&[vec![true, false], vec![true, true]]);
        assert_eq!(v, Verdict::Degraded);
        assert!(r.contains("failed_replicas=1"), "{r}");

        let (v, r) = replica_verdict(&[vec![true, true], vec![false, false]]);
        assert_eq!(v, Verdict::Critical);
        assert!(r.contains("no_healthy_replica"), "{r}");
        assert!(r.contains("shards=1"), "{r}");
    }

    #[test]
    fn lag_verdict_scales_with_the_window() {
        assert_eq!(lag_verdict(0, 1024).0, Verdict::Ok);
        assert_eq!(lag_verdict(512, 1024).0, Verdict::Ok);
        assert_eq!(lag_verdict(513, 1024).0, Verdict::Degraded);
        assert_eq!(lag_verdict(1024, 1024).0, Verdict::Critical);
    }

    #[test]
    fn slo_verdict_needs_samples_and_tracks_targets() {
        let windows = ServerWindows::new();
        let ok = Duration::from_millis(250);
        // Idle: always ok.
        let (v, r) = slo_verdict(&windows.summary(W1M), ok, 0.99);
        assert_eq!(v, Verdict::Ok);
        assert!(r.contains("samples=0"), "{r}");

        // Fast and clean: ok.
        for _ in 0..100 {
            windows.observe(200, Duration::from_millis(1));
        }
        assert_eq!(slo_verdict(&windows.summary(W1M), ok, 0.99).0, Verdict::Ok);

        // Slow: latency burn.
        let slow = ServerWindows::new();
        for _ in 0..100 {
            slow.observe(200, Duration::from_millis(900));
        }
        assert_eq!(
            slo_verdict(&slow.summary(W1M), ok, 0.99).0,
            Verdict::Degraded
        );

        // Mostly 5xx: critical availability burn.
        let down = ServerWindows::new();
        for i in 0..100 {
            down.observe(if i % 2 == 0 { 500 } else { 200 }, Duration::from_millis(1));
        }
        assert_eq!(
            slo_verdict(&down.summary(W1M), ok, 0.99).0,
            Verdict::Critical
        );
    }

    #[test]
    fn window_summaries_rotate_with_ticks() {
        let w = ServerWindows::new();
        for _ in 0..30 {
            w.observe(200, Duration::from_millis(2));
        }
        w.observe(503, Duration::from_millis(1));
        let s = w.summary(W10S);
        assert_eq!(s.requests, 31);
        assert_eq!(s.errors_5xx, 1);
        assert!(s.error_ratio > 0.0);
        assert_eq!(s.latency.count, 31);
        // Rotate the whole 10s window away; the 5m window still sees it.
        for _ in 0..W10S {
            w.tick();
        }
        assert_eq!(w.summary(W10S).requests, 0);
        assert_eq!(w.summary(W5M).requests, 31);
    }

    #[test]
    fn verdicts_order_by_severity() {
        assert!(Verdict::Ok < Verdict::Degraded);
        assert!(Verdict::Degraded < Verdict::Critical);
        assert_eq!(Verdict::Critical.as_str(), "critical");
    }
}
