//! Request handlers: routes dispatched against the shared database.

use crate::api::{
    events_value, json_response, ns_to_ms, parse_body, AckResponse, ApiError, CheckpointResponse,
    HealthResponse, InsertBody, InsertRequest, InsertResponse, ObjectEdit, OplogSection,
    PathRequest, PlannerSection, ReplicaLagDto, ReplicaRequest, ReplicaResponse,
    ReplicationSection, ReshardRequest, ReshardResponse, ReshardSection, SearchQuery,
    SearchRequest, SearchResponse, ServiceSection, ShardReplicationDto, SketchRequest,
    SlowQueriesResponse, SlowQueryDto, SnapshotResponse, StatsResponse, StatsV1Response,
    TopologySection, TraceDto, TracedSearchResponse, WalSection, WindowStatsDto, WindowsSection,
};
use crate::health::{evaluate, replica_verdict, ServerWindows, Verdict, W10S, W1M, W5M};
use crate::http::{default_code, Request, Response};
use crate::metrics::{build_registry, HttpMetrics};
use crate::router::{resolve, Route};
use crate::slowlog::{SlowQueryEntry, SlowQueryLog};
use crate::ServerConfig;
use be2d_db::sketch::Sketch;
use be2d_db::{
    QueryOptions, QueryTrace, RecordId, ReplicatedImageDatabase, ReplicationMode, Resharder,
    SearchHit,
};
use be2d_metrics::Registry;
use serde::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Monotonic service counters, updated lock-free by every worker.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests fully served (any status).
    pub requests: AtomicU64,
    /// Searches served (scene, text, and sketch).
    pub searches: AtomicU64,
    /// Images inserted.
    pub inserts: AtomicU64,
    /// Image removals + object edits.
    pub edits: AtomicU64,
    /// Requests answered with status >= 400.
    pub errors: AtomicU64,
    /// Connections shed with 503 because the queue was full.
    pub shed: AtomicU64,
}

/// Everything a worker needs to serve one request.
#[derive(Debug)]
pub struct AppState {
    /// The shared (possibly sharded and replicated) database.
    pub db: ReplicatedImageDatabase,
    /// Immutable server configuration.
    pub config: ServerConfig,
    /// Service counters (shared with the metric registry's scrape-time
    /// callbacks, hence the `Arc`).
    pub stats: Arc<ServerStats>,
    /// The Prometheus registry behind `GET /v1/metrics`.
    pub(crate) registry: Registry,
    /// Request-path metric handles (per-route latency, queue pressure).
    pub(crate) http_metrics: HttpMetrics,
    /// Bounded ring of the slowest queries seen, for
    /// `GET /v1/debug/slow_queries`.
    pub(crate) slow_log: SlowQueryLog,
    /// Rolling request windows behind `/v1/health` and the `windows`
    /// stats section, rotated by the background health ticker (shared
    /// with it, hence the `Arc`).
    pub windows: Arc<ServerWindows>,
    /// Query options applied when a request sends none.
    pub default_options: QueryOptions,
    /// Set by `POST /admin/shutdown`; the accept loop watches it.
    pub shutdown: AtomicBool,
    /// Admission token for `POST /admin/reshard`: exactly one request
    /// may hold it from acceptance until its background migration
    /// thread finishes, making the 409-on-concurrent-reshard check
    /// atomic (shared with that thread, hence the `Arc`).
    pub reshard_inflight: Arc<AtomicBool>,
    /// Worker-thread count (for `/stats`).
    pub threads: usize,
    /// The server's bound address; used to poke the blocking accept
    /// loop awake when shutdown is requested over HTTP.
    pub addr: std::net::SocketAddr,
    started: Instant,
}

impl AppState {
    /// Builds the state for one server instance.
    #[must_use]
    pub fn new(
        db: ReplicatedImageDatabase,
        config: ServerConfig,
        threads: usize,
        addr: std::net::SocketAddr,
    ) -> Arc<AppState> {
        let started = Instant::now();
        let stats = Arc::new(ServerStats::default());
        let http_metrics = HttpMetrics::new();
        let registry = build_registry(&db, &stats, &http_metrics, started);
        let slow_log = SlowQueryLog::new(config.slow_query_capacity);
        Arc::new(AppState {
            db,
            config,
            stats,
            registry,
            http_metrics,
            slow_log,
            windows: Arc::new(ServerWindows::new()),
            default_options: QueryOptions::serving(),
            shutdown: AtomicBool::new(false),
            reshard_inflight: Arc::new(AtomicBool::new(false)),
            threads,
            addr,
            started,
        })
    }

    /// Seconds since this server instance was constructed.
    #[must_use]
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Whether graceful shutdown has been requested.
    #[must_use]
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flags shutdown and unblocks the accept loop with a throwaway
    /// connection, so `Server::run` observes the flag promptly even
    /// with no further traffic.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = std::net::TcpStream::connect(self.addr);
    }
}

/// Serves one parsed request, updating the stats counters and the
/// per-route latency histogram. Requests on legacy unversioned paths
/// are answered with a `deprecation: true` header (success and error
/// alike) — the `/v1/` namespace is the current surface.
pub fn handle(state: &AppState, request: &Request) -> Response {
    let start = Instant::now();
    let resolved = resolve(request.method, &request.path);
    let deprecated = resolved.as_ref().is_ok_and(|r| r.deprecated);
    let route = resolved.as_ref().ok().map(|r| r.route);
    let response = match resolved {
        Ok(resolved) => {
            dispatch(state, resolved.route, request).unwrap_or_else(|e| e.to_response())
        }
        Err(e) => {
            ApiError::coded(e.status(), default_code(e.status()), e.message(), false).to_response()
        }
    };
    state.stats.requests.fetch_add(1, Ordering::Relaxed);
    if response.status >= 400 {
        state.stats.errors.fetch_add(1, Ordering::Relaxed);
    }
    state
        .http_metrics
        .record(route, response.status, start.elapsed());
    state.windows.observe(response.status, start.elapsed());
    if deprecated {
        response.with_header("deprecation", "true")
    } else {
        response
    }
}

fn dispatch(state: &AppState, route: Route, request: &Request) -> Result<Response, ApiError> {
    match route {
        Route::Health => healthz(state),
        Route::HealthReport => Ok(health_report(state)),
        Route::Metrics => Ok(metrics(state)),
        Route::SlowQueries => Ok(slow_queries(state)),
        Route::DebugEvents => debug_events(state, request),
        Route::Checkpoint => checkpoint(state),
        Route::InsertImage => insert_image(state, &body_of(request)?),
        Route::DeleteImage(id) => delete_image(state, id),
        Route::AddObject(id) => edit_object(state, id, &body_of(request)?, true),
        Route::RemoveObject(id) => edit_object(state, id, &body_of(request)?, false),
        Route::Search => search(state, &body_of(request)?),
        Route::SearchSketch => search_sketch(state, &body_of(request)?),
        Route::Stats => Ok(stats(state)),
        Route::StatsV1 => Ok(stats_v1(state)),
        Route::Snapshot => snapshot(state, &body_of(request)?),
        Route::Restore => restore(state, &body_of(request)?),
        Route::ReplicaFail => replica_health(state, &body_of(request)?, false),
        Route::ReplicaHeal => replica_health(state, &body_of(request)?, true),
        Route::Reshard => reshard(state, &body_of(request)?),
        Route::Shutdown => {
            state.request_shutdown();
            Ok(Response::json(200, "{\"shutting_down\":true}".into()))
        }
    }
}

fn body_of(request: &Request) -> Result<Value, ApiError> {
    parse_body(&request.body)
}

/// `GET /healthz`: the load-balancer contract. 200 while every shard
/// can serve (status `"ok"`, or `"degraded"` on partial replica loss),
/// 503 with the unified error envelope (`code = "no_healthy_replica"`,
/// retryable) the moment any shard has **zero** healthy replicas —
/// that shard can only answer errors, so this node must leave
/// rotation. The body keeps the build version and uptime so a probe
/// (or a human) can tell which build answered and how long it has been
/// alive.
fn healthz(state: &AppState) -> Result<Response, ApiError> {
    let (verdict, reason) = replica_verdict(&state.db.replica_health());
    if verdict == Verdict::Critical {
        return Err(ApiError::coded(503, "no_healthy_replica", reason, true));
    }
    let status = if verdict == Verdict::Ok {
        "ok"
    } else {
        "degraded"
    };
    Ok(Response::json(
        200,
        format!(
            "{{\"status\":\"{status}\",\"version\":\"{}\",\"uptime_s\":{:.3}}}",
            env!("CARGO_PKG_VERSION"),
            state.uptime_s()
        ),
    ))
}

/// `GET /v1/health`: the full health report — per-subsystem verdicts
/// (shards, replicas, replication lag, WAL, SLO burn over the rolling
/// 1-minute window) rolled up to the worst verdict. Always 200: this
/// endpoint is the diagnosis, `/healthz` is the routing decision.
fn health_report(state: &AppState) -> Response {
    let report = evaluate(&state.db, &state.windows, &state.config);
    json_response(200, &HealthResponse::from_report(&report))
}

/// `GET /v1/debug/events[?since={seq}]`: the structured event journal.
/// `since` returns only events with a greater sequence; the response's
/// `last_seq` is the cursor for the next poll.
fn debug_events(state: &AppState, request: &Request) -> Result<Response, ApiError> {
    let mut since = 0u64;
    for pair in request.query.split('&').filter(|p| !p.is_empty()) {
        if let Some(raw) = pair.strip_prefix("since=") {
            since = raw
                .parse::<u64>()
                .map_err(|_| ApiError::bad(format!("invalid since cursor {raw:?}")))?;
        }
    }
    let journal = state.db.events();
    let (events, last_seq) = journal.since(since);
    Ok(json_response(
        200,
        &events_value(&events, last_seq, journal.capacity()),
    ))
}

/// `GET /v1/metrics`: every registered family in Prometheus text
/// exposition format 0.0.4. Rendering reads atomics; it never blocks
/// the request path.
fn metrics(state: &AppState) -> Response {
    Response {
        status: 200,
        body: state.registry.render().into_bytes(),
        content_type: "text/plain; version=0.0.4",
        headers: Vec::new(),
    }
}

/// `GET /v1/debug/slow_queries`: the worst queries retained in the
/// slow-query ring, slowest first.
fn slow_queries(state: &AppState) -> Response {
    let queries = state
        .slow_log
        .snapshot()
        .iter()
        .map(|e| SlowQueryDto {
            kind: e.kind.to_owned(),
            total_ms: ns_to_ms(e.total_ns),
            planner_ms: ns_to_ms(e.planner_ns),
            scatter_ms: ns_to_ms(e.scatter_ns),
            gather_ms: ns_to_ms(e.gather_ns),
            hits: e.hits,
            top_k: e.top_k,
            at_uptime_s: e.at_uptime_s,
        })
        .collect();
    json_response(
        200,
        &SlowQueriesResponse {
            capacity: state.slow_log.capacity(),
            queries,
        },
    )
}

/// `POST /v1/admin/checkpoint`: WAL checkpoint over HTTP — fresh anchor
/// snapshots plus on-disk log truncation. 500 `persist_failed` when the
/// database runs without a WAL.
fn checkpoint(state: &AppState) -> Result<Response, ApiError> {
    let start = Instant::now();
    let records = state
        .db
        .checkpoint_wal()
        .map_err(|e| ApiError::from_db(&e))?;
    Ok(json_response(
        200,
        &CheckpointResponse {
            records,
            duration_ms: start.elapsed().as_secs_f64() * 1e3,
        },
    ))
}

/// Offers one finished search to the slow-query ring. Cheap enough to
/// run unconditionally: sub-floor queries cost one atomic load.
fn offer_slow(
    state: &AppState,
    kind: &'static str,
    hits: &[SearchHit],
    options: &QueryOptions,
    trace: &QueryTrace,
) {
    state.slow_log.offer(SlowQueryEntry {
        kind,
        total_ns: trace.total_ns,
        planner_ns: trace.planner_ns,
        scatter_ns: trace.scatter_ns,
        gather_ns: trace.gather_ns,
        hits: hits.len(),
        top_k: options.top_k,
        at_uptime_s: state.uptime_s(),
    });
}

/// Builds the search response: the legacy shape by default, hits plus
/// the per-stage breakdown when the request set `"trace": true`.
fn search_response(hits: &[SearchHit], trace: &QueryTrace, traced: bool) -> Response {
    if traced {
        json_response(
            200,
            &TracedSearchResponse {
                hits: SearchResponse::from_hits(hits).hits,
                trace: TraceDto::from_trace(trace),
            },
        )
    } else {
        json_response(200, &SearchResponse::from_hits(hits))
    }
}

fn insert_image(state: &AppState, body: &Value) -> Result<Response, ApiError> {
    let req = InsertRequest::from_value(body)?;
    let (id, objects) = match req.image {
        InsertBody::Scene(scene) => {
            let id = state
                .db
                .insert_scene(&req.name, &scene)
                .map_err(|e| ApiError::from_db(&e))?;
            (id, scene.len())
        }
        InsertBody::Symbolic(symbolic) => {
            let objects = symbolic.object_count();
            let id = state
                .db
                .insert_symbolic(&req.name, *symbolic)
                .map_err(|e| ApiError::from_db(&e))?;
            (id, objects)
        }
    };
    state.stats.inserts.fetch_add(1, Ordering::Relaxed);
    Ok(json_response(
        201,
        &InsertResponse {
            id: id.index(),
            name: req.name,
            objects,
        },
    ))
}

fn delete_image(state: &AppState, id: RecordId) -> Result<Response, ApiError> {
    state.db.remove(id).map_err(|e| ApiError::from_db(&e))?;
    state.stats.edits.fetch_add(1, Ordering::Relaxed);
    Ok(json_response(
        200,
        &AckResponse {
            id: id.index(),
            ok: true,
        },
    ))
}

fn edit_object(
    state: &AppState,
    id: RecordId,
    body: &Value,
    add: bool,
) -> Result<Response, ApiError> {
    let edit = ObjectEdit::from_value(body)?;
    let result = if add {
        state.db.add_object(id, &edit.class, edit.mbr)
    } else {
        state.db.remove_object(id, &edit.class, edit.mbr)
    };
    result.map_err(|e| ApiError::from_db(&e))?;
    state.stats.edits.fetch_add(1, Ordering::Relaxed);
    Ok(json_response(
        200,
        &AckResponse {
            id: id.index(),
            ok: true,
        },
    ))
}

fn search(state: &AppState, body: &Value) -> Result<Response, ApiError> {
    let req = SearchRequest::from_value(body, &state.default_options)?;
    // Always the traced path: metrics and the slow-query ring see every
    // search, and tracing is the only search implementation, so the
    // rankings cannot depend on whether the breakdown is returned.
    let (kind, (hits, trace)) = match &req.query {
        SearchQuery::Scene(scene) => (
            "scene",
            state
                .db
                .search_scene_traced(scene, &req.options)
                .map_err(|e| ApiError::from_db(&e))?,
        ),
        SearchQuery::Text { u, v } => (
            "text",
            state
                .db
                .search_text_traced(u, v, &req.options)
                .map_err(|e| ApiError::from_db(&e))?,
        ),
    };
    state.stats.searches.fetch_add(1, Ordering::Relaxed);
    offer_slow(state, kind, &hits, &req.options, &trace);
    Ok(search_response(&hits, &trace, req.trace))
}

fn search_sketch(state: &AppState, body: &Value) -> Result<Response, ApiError> {
    let req = SketchRequest::from_value(body, &state.default_options)?;
    let scene = Sketch::parse(&req.sketch)
        .and_then(|s| s.to_scene())
        .map_err(|e| ApiError::from_db(&e))?;
    let (hits, trace) = state
        .db
        .search_scene_traced(&scene, &req.options)
        .map_err(|e| ApiError::from_db(&e))?;
    state.stats.searches.fetch_add(1, Ordering::Relaxed);
    offer_slow(state, "sketch", &hits, &req.options, &trace);
    Ok(search_response(&hits, &trace, req.trace))
}

/// `POST /admin/replicas/fail` / `heal`: fault injection and recovery
/// for one replica. Healing rebuilds the replica's state from a
/// healthy peer before it rejoins rotation.
fn replica_health(state: &AppState, body: &Value, heal: bool) -> Result<Response, ApiError> {
    let req = ReplicaRequest::from_value(body)?;
    let result = if heal {
        state.db.rebuild_replica(req.shard, req.replica)
    } else {
        state.db.fail_replica(req.shard, req.replica)
    };
    result.map_err(|e| ApiError::from_db(&e))?;
    Ok(json_response(
        200,
        &ReplicaResponse {
            shard: req.shard,
            replica: req.replica,
            healthy: heal,
        },
    ))
}

/// `POST /admin/reshard`: start an online reshard in the background.
/// The request returns immediately (202); `GET /stats` reports
/// progress, and the migration keeps serving reads and writes with
/// rankings unchanged throughout.
fn reshard(state: &AppState, body: &Value) -> Result<Response, ApiError> {
    let req = ReshardRequest::from_value(body)?;
    // Atomic admission: the token is held from here until the spawned
    // migration thread finishes, so two racing requests can never both
    // be told 202 (one would silently lose the Resharder's internal
    // lock and its migration would never run).
    if state.reshard_inflight.swap(true, Ordering::SeqCst) {
        return Err(ApiError::coded(
            409,
            "conflict",
            "a reshard is already in progress",
            true,
        ));
    }
    let release = |response| {
        state.reshard_inflight.store(false, Ordering::SeqCst);
        response
    };
    // An aborted earlier migration (internal error; epoch still
    // mid-flight) can only be *resumed* — rerun to the same target.
    if state.db.resharding() && state.db.reshard_progress().to != req.shards {
        return release(Err(ApiError::coded(
            409,
            "conflict",
            format!(
                "an aborted reshard to {} shards must be resumed first",
                state.db.reshard_progress().to
            ),
            false,
        )));
    }
    let from = state.db.shard_count();
    if req.shards == from && !state.db.resharding() {
        return release(Ok(json_response(
            200,
            &ReshardResponse {
                from,
                to: req.shards,
                started: false,
            },
        )));
    }
    let batch = req.batch.unwrap_or(state.config.reshard_batch);
    let db = state.db.clone();
    let inflight = Arc::clone(&state.reshard_inflight);
    let to = req.shards;
    // The migration outlives this request by design; the admission
    // token is released when the run ends, success or not.
    std::thread::spawn(move || {
        if let Err(e) = Resharder::new(&db).batch_ids(batch).run(to) {
            eprintln!("reshard to {to} shards failed: {e}");
        }
        inflight.store(false, Ordering::SeqCst);
    });
    Ok(json_response(
        202,
        &ReshardResponse {
            from,
            to,
            started: true,
        },
    ))
}

fn stats(state: &AppState) -> Response {
    // One simultaneous read lock over all replicas of all shards: the
    // reported records/classes/objects combination is never torn by a
    // concurrent write.
    let db_stats = state.db.stats();
    let reshard = state.db.reshard_progress();
    json_response(
        200,
        &StatsResponse {
            records: db_stats.shard_records.iter().sum(),
            classes: db_stats.classes,
            objects: db_stats.objects,
            shards: state.db.shard_count(),
            replicas: state.db.replica_count(),
            shard_records: db_stats.shard_records,
            replica_records: db_stats.replica_records,
            replica_health: db_stats.replica_health,
            planner_skipped: state.db.planner_skipped(),
            reshard_active: reshard.active,
            reshard_from: reshard.from,
            reshard_to: reshard.to,
            reshard_migrated_ids: reshard.migrated_ids,
            reshard_total_ids: reshard.total_ids,
            reshard_moved_records: reshard.moved_records,
            requests: state.stats.requests.load(Ordering::Relaxed),
            searches: state.stats.searches.load(Ordering::Relaxed),
            inserts: state.stats.inserts.load(Ordering::Relaxed),
            edits: state.stats.edits.load(Ordering::Relaxed),
            errors: state.stats.errors.load(Ordering::Relaxed),
            shed: state.stats.shed.load(Ordering::Relaxed),
            threads: state.threads,
            uptime_s: state.started.elapsed().as_secs_f64(),
        },
    )
}

/// `GET /v1/stats`: the nested sections. Every fact of the legacy flat
/// shape appears here too, plus the replication and op-log state that
/// the flat shape predates.
fn stats_v1(state: &AppState) -> Response {
    let db_stats = state.db.stats();
    let reshard = state.db.reshard_progress();
    let replication = state.db.replication_stats();
    let oplog = state.db.oplog_stats();
    let max_lag = match state.db.replication_mode() {
        ReplicationMode::Async { max_lag } => Some(max_lag),
        ReplicationMode::Sync | ReplicationMode::Quorum => None,
    };
    json_response(
        200,
        &StatsV1Response {
            records: db_stats.shard_records.iter().sum(),
            classes: db_stats.classes,
            objects: db_stats.objects,
            topology: TopologySection {
                shards: state.db.shard_count(),
                replicas: state.db.replica_count(),
                shard_records: db_stats.shard_records,
                replica_records: db_stats.replica_records,
                replica_health: db_stats.replica_health,
            },
            replication: ReplicationSection {
                mode: replication.mode.name().to_owned(),
                max_lag,
                shards: replication
                    .shards
                    .iter()
                    .map(|shard| ShardReplicationDto {
                        head_seq: shard.head_seq,
                        replicas: shard
                            .replicas
                            .iter()
                            .map(|r| ReplicaLagDto {
                                last_applied_seq: r.last_applied_seq,
                                lag: r.lag,
                                healthy: r.healthy,
                            })
                            .collect(),
                    })
                    .collect(),
                catchup_replays: replication.catchup_replays,
                catchup_clones: replication.catchup_clones,
                writer_drains: replication.writer_drains,
                fallback_reads: replication.fallback_reads,
            },
            planner: PlannerSection {
                mode: state.db.planner_mode().to_string(),
                skipped: state.db.planner_skipped(),
                ordered_scatters: state.db.metrics().planner_ordered_scatters.get(),
                dense_scans: state.db.metrics().planner_dense_scans.get(),
            },
            reshard: ReshardSection {
                active: reshard.active,
                from: reshard.from,
                to: reshard.to,
                migrated_ids: reshard.migrated_ids,
                total_ids: reshard.total_ids,
                moved_records: reshard.moved_records,
            },
            oplog: OplogSection {
                window: oplog.window,
                last_seq: oplog.last_seq,
                entries: oplog.entries,
                wal: oplog.wal.map(|w| WalSection {
                    appended: w.appended,
                    fsyncs: w.fsyncs,
                    truncations: w.truncations,
                    healed_tails: w.healed_tails,
                    recovered: w.recovered,
                }),
            },
            service: ServiceSection {
                requests: state.stats.requests.load(Ordering::Relaxed),
                searches: state.stats.searches.load(Ordering::Relaxed),
                inserts: state.stats.inserts.load(Ordering::Relaxed),
                edits: state.stats.edits.load(Ordering::Relaxed),
                errors: state.stats.errors.load(Ordering::Relaxed),
                shed: state.stats.shed.load(Ordering::Relaxed),
                threads: state.threads,
                uptime_s: state.started.elapsed().as_secs_f64(),
            },
            windows: WindowsSection {
                last_10s: WindowStatsDto::from_summary(&state.windows.summary(W10S)),
                last_1m: WindowStatsDto::from_summary(&state.windows.summary(W1M)),
                last_5m: WindowStatsDto::from_summary(&state.windows.summary(W5M)),
            },
        },
    )
}

/// Resolves a request's optional file name inside the configured
/// snapshot directory ([`PathRequest::from_value`] already rejected
/// separators and traversal).
fn snapshot_target(state: &AppState, req: &PathRequest) -> std::path::PathBuf {
    let name = req.file.as_deref().unwrap_or(&state.config.snapshot_file);
    state.config.snapshot_dir.join(name)
}

fn snapshot(state: &AppState, body: &Value) -> Result<Response, ApiError> {
    let req = PathRequest::from_value(body)?;
    let path = snapshot_target(state, &req);
    let records = state
        .db
        .save_snapshot(&path)
        .map_err(|e| ApiError::from_db(&e))?;
    Ok(json_response(
        200,
        &SnapshotResponse {
            path: path.display().to_string(),
            records,
        },
    ))
}

fn restore(state: &AppState, body: &Value) -> Result<Response, ApiError> {
    let req = PathRequest::from_value(body)?;
    let path = snapshot_target(state, &req);
    // Accepts both sharded manifests and plain single-file snapshots;
    // records are re-routed when the shard topology changed.
    let records = state
        .db
        .restore_from(&path)
        .map_err(|e| ApiError::from_db(&e))?;
    Ok(json_response(
        200,
        &SnapshotResponse {
            path: path.display().to_string(),
            records,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;

    fn state() -> Arc<AppState> {
        // No real listener behind this state: the shutdown poke just
        // fails fast against the unroutable port. Two shards × two
        // replicas so every handler test also exercises routing,
        // scatter-gather, and the write fan-out.
        AppState::new(
            ReplicatedImageDatabase::with_topology(2, 2),
            ServerConfig::default(),
            4,
            ([127, 0, 0, 1], 9).into(),
        )
    }

    fn request(method: Method, path: &str, body: &str) -> Request {
        Request {
            method,
            path: path.into(),
            query: String::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            http10: false,
        }
    }

    const SCENE_AB: &str = r#"{"width":100,"height":100,"objects":[
        {"class":"A","mbr":[10,30,40,60]},{"class":"B","mbr":[60,85,40,60]}]}"#;

    #[test]
    fn insert_search_delete_flow() {
        let state = state();
        let resp = handle(
            &state,
            &request(
                Method::Post,
                "/images",
                &format!(r#"{{"name":"left","scene":{SCENE_AB}}}"#),
            ),
        );
        assert_eq!(
            resp.status,
            201,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );

        let resp = handle(
            &state,
            &request(
                Method::Post,
                "/search",
                &format!(r#"{{"scene":{SCENE_AB},"options":{{"top_k":1}}}}"#),
            ),
        );
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"name\":\"left\""), "{body}");

        let resp = handle(&state, &request(Method::Delete, "/images/0", ""));
        assert_eq!(resp.status, 200);
        let resp = handle(&state, &request(Method::Delete, "/images/0", ""));
        assert_eq!(resp.status, 404, "double delete");

        assert_eq!(state.stats.inserts.load(Ordering::Relaxed), 1);
        assert_eq!(state.stats.searches.load(Ordering::Relaxed), 1);
        assert_eq!(state.stats.errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn object_edits() {
        let state = state();
        handle(
            &state,
            &request(
                Method::Post,
                "/images",
                &format!(r#"{{"name":"x","scene":{SCENE_AB}}}"#),
            ),
        );
        let add = r#"{"class":"C","mbr":[1,9,1,9]}"#;
        assert_eq!(
            handle(&state, &request(Method::Post, "/images/0/objects", add)).status,
            200
        );
        assert_eq!(
            handle(&state, &request(Method::Delete, "/images/0/objects", add)).status,
            200
        );
        // removing it again is a semantic failure → 422
        assert_eq!(
            handle(&state, &request(Method::Delete, "/images/0/objects", add)).status,
            422
        );
        // an MBR outside the frame is a semantic failure → 422
        let out = r#"{"class":"C","mbr":[1,500,1,9]}"#;
        assert_eq!(
            handle(&state, &request(Method::Post, "/images/0/objects", out)).status,
            422
        );
    }

    #[test]
    fn sketch_search_and_errors() {
        let state = state();
        handle(
            &state,
            &request(
                Method::Post,
                "/images",
                &format!(r#"{{"name":"ab","scene":{SCENE_AB}}}"#),
            ),
        );
        let resp = handle(
            &state,
            &request(
                Method::Post,
                "/search/sketch",
                r#"{"sketch":"A left-of B"}"#,
            ),
        );
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8(resp.body).unwrap().contains("\"ab\""));

        let resp = handle(
            &state,
            &request(Method::Post, "/search/sketch", r#"{"sketch":"A nextto B"}"#),
        );
        assert_eq!(resp.status, 422);
    }

    #[test]
    fn routing_errors_and_health() {
        let state = state();
        assert_eq!(
            handle(&state, &request(Method::Get, "/healthz", "")).status,
            200
        );
        assert_eq!(
            handle(&state, &request(Method::Get, "/nope", "")).status,
            404
        );
        assert_eq!(
            handle(&state, &request(Method::Get, "/images", "")).status,
            405
        );
        assert_eq!(
            handle(&state, &request(Method::Delete, "/images/zz", "")).status,
            400
        );
        assert_eq!(
            handle(&state, &request(Method::Post, "/search", "{broken")).status,
            400
        );
    }

    #[test]
    fn snapshot_restore_cycle() {
        let dir = std::env::temp_dir().join(format!("be2d_handler_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let state = AppState::new(
            ReplicatedImageDatabase::with_topology(2, 2),
            ServerConfig {
                snapshot_dir: dir.clone(),
                ..ServerConfig::default()
            },
            4,
            ([127, 0, 0, 1], 9).into(),
        );
        handle(
            &state,
            &request(
                Method::Post,
                "/images",
                &format!(r#"{{"name":"keep","scene":{SCENE_AB}}}"#),
            ),
        );
        let body = r#"{"path":"cycle.json"}"#;
        let resp = handle(&state, &request(Method::Post, "/snapshot", body));
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        assert!(dir.join("cycle.json").is_file(), "confined to snapshot_dir");

        // wipe by inserting more, then restore
        handle(
            &state,
            &request(
                Method::Post,
                "/images",
                &format!(r#"{{"name":"extra","scene":{SCENE_AB}}}"#),
            ),
        );
        assert_eq!(state.db.len(), 2);
        let resp = handle(&state, &request(Method::Post, "/restore", body));
        assert_eq!(resp.status, 200);
        assert_eq!(state.db.len(), 1);

        // restoring a missing file is a persistence error
        let resp = handle(
            &state,
            &request(Method::Post, "/restore", r#"{"path":"missing.json"}"#),
        );
        assert_eq!(resp.status, 500);

        // arbitrary filesystem paths are rejected before touching disk
        for escape in [r#"{"path":"/etc/hostname"}"#, r#"{"path":"../../x.json"}"#] {
            let resp = handle(&state, &request(Method::Post, "/snapshot", escape));
            assert_eq!(resp.status, 400, "{escape}");
            let resp = handle(&state, &request(Method::Post, "/restore", escape));
            assert_eq!(resp.status, 400, "{escape}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_and_shutdown() {
        let state = state();
        let resp = handle(&state, &request(Method::Get, "/stats", ""));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"records\":0"), "{body}");
        assert!(body.contains("\"threads\":4"), "{body}");
        assert!(body.contains("\"shards\":2"), "{body}");
        assert!(body.contains("\"replicas\":2"), "{body}");
        assert!(body.contains("\"shard_records\":[0,0]"), "{body}");
        assert!(body.contains("\"replica_records\":[[0,0],[0,0]]"), "{body}");
        assert!(
            body.contains("\"replica_health\":[[true,true],[true,true]]"),
            "{body}"
        );
        assert!(body.contains("\"planner_skipped\":0"), "{body}");

        assert!(!state.shutting_down());
        let resp = handle(&state, &request(Method::Post, "/admin/shutdown", ""));
        assert_eq!(resp.status, 200);
        assert!(state.shutting_down());
    }

    #[test]
    fn healthz_reports_degraded_on_partial_replica_loss() {
        let state = state();
        let resp = handle(&state, &request(Method::Get, "/healthz", ""));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"version\""), "{body}");
        assert!(body.contains("\"uptime_s\""), "{body}");

        state.db.fail_replica(0, 1).unwrap();
        let resp = handle(&state, &request(Method::Get, "/healthz", ""));
        assert_eq!(resp.status, 200, "partial loss still serves");
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"status\":\"degraded\""), "{body}");

        state.db.rebuild_replica(0, 1).unwrap();
        let resp = handle(&state, &request(Method::Get, "/healthz", ""));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"status\":\"ok\""), "{body}");
    }

    #[test]
    fn health_endpoint_rolls_up_subsystem_verdicts() {
        let state = state();
        let resp = handle(&state, &request(Method::Get, "/v1/health", ""));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        for name in ["shards", "replicas", "replication", "wal", "slo"] {
            assert!(body.contains(&format!("\"name\":\"{name}\"")), "{body}");
        }

        state.db.fail_replica(1, 0).unwrap();
        let resp = handle(&state, &request(Method::Get, "/v1/health", ""));
        assert_eq!(resp.status, 200, "diagnosis endpoint never 503s");
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"status\":\"degraded\""), "{body}");
        assert!(body.contains("failed_replicas=1"), "{body}");
    }

    #[test]
    fn debug_events_serves_the_journal_with_a_cursor() {
        let state = state();
        handle(
            &state,
            &request(
                Method::Post,
                "/images",
                &format!(r#"{{"name":"seed","scene":{SCENE_AB}}}"#),
            ),
        );
        state.db.fail_replica(0, 1).unwrap();
        state.db.rebuild_replica(0, 1).unwrap();

        let resp = handle(&state, &request(Method::Get, "/v1/debug/events", ""));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"type\":\"replica_failed\""), "{body}");
        assert!(body.contains("\"type\":\"replica_healed\""), "{body}");
        assert!(body.contains("\"last_seq\":2"), "{body}");
        assert!(body.contains("\"method\":\"replay\""), "{body}");

        // The cursor skips already-seen events.
        let mut req = request(Method::Get, "/v1/debug/events", "");
        req.query = "since=1".into();
        let resp = handle(&state, &req);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(!body.contains("replica_failed"), "{body}");
        assert!(body.contains("replica_healed"), "{body}");

        // A cursor past the head yields an empty list, same last_seq.
        req.query = "since=99".into();
        let resp = handle(&state, &req);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"events\":[]"), "{body}");
        assert!(body.contains("\"last_seq\":2"), "{body}");

        // A malformed cursor is a 400.
        req.query = "since=xyz".into();
        assert_eq!(handle(&state, &req).status, 400);
    }

    #[test]
    fn stats_v1_includes_rolling_windows() {
        let state = state();
        let resp = handle(&state, &request(Method::Get, "/v1/stats", ""));
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"windows\""), "{body}");
        assert!(body.contains("\"last_10s\""), "{body}");
        assert!(body.contains("\"last_5m\""), "{body}");
        // Windows record after dispatch, so a response reports the
        // requests served before it: the second scrape sees the first.
        let resp = handle(&state, &request(Method::Get, "/v1/stats", ""));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"requests\":1"), "{body}");
    }

    #[test]
    fn replica_fail_and_heal_endpoints() {
        let state = state();
        handle(
            &state,
            &request(
                Method::Post,
                "/images",
                &format!(r#"{{"name":"kept","scene":{SCENE_AB}}}"#),
            ),
        );

        // Fail replica 1 of shard 0: searches keep answering.
        let body = r#"{"shard":0,"replica":1}"#;
        let resp = handle(&state, &request(Method::Post, "/admin/replicas/fail", body));
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        assert!(String::from_utf8(resp.body)
            .unwrap()
            .contains("\"healthy\":false"));
        let resp = handle(
            &state,
            &request(
                Method::Post,
                "/search",
                &format!(r#"{{"scene":{SCENE_AB}}}"#),
            ),
        );
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8(resp.body).unwrap().contains("\"kept\""));
        let resp = handle(&state, &request(Method::Get, "/stats", ""));
        let stats_body = String::from_utf8(resp.body).unwrap();
        assert!(
            stats_body.contains("\"replica_health\":[[true,false],[true,true]]"),
            "{stats_body}"
        );

        // Failing the last healthy copy of the shard is a 409 conflict.
        let resp = handle(
            &state,
            &request(
                Method::Post,
                "/admin/replicas/fail",
                r#"{"shard":0,"replica":0}"#,
            ),
        );
        assert_eq!(
            resp.status,
            409,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );

        // Heal rebuilds from the healthy peer and rejoins.
        let resp = handle(&state, &request(Method::Post, "/admin/replicas/heal", body));
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8(resp.body)
            .unwrap()
            .contains("\"healthy\":true"));
        let resp = handle(&state, &request(Method::Get, "/stats", ""));
        let stats_body = String::from_utf8(resp.body).unwrap();
        assert!(
            stats_body.contains("\"replica_health\":[[true,true],[true,true]]"),
            "{stats_body}"
        );

        // Out-of-range coordinates are 409, malformed bodies 400.
        let resp = handle(
            &state,
            &request(
                Method::Post,
                "/admin/replicas/heal",
                r#"{"shard":9,"replica":0}"#,
            ),
        );
        assert_eq!(resp.status, 409);
        let resp = handle(
            &state,
            &request(Method::Post, "/admin/replicas/fail", r#"{"shard":0}"#),
        );
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn reshard_endpoint_migrates_in_the_background() {
        let state = state();
        for i in 0..12 {
            handle(
                &state,
                &request(
                    Method::Post,
                    "/images",
                    &format!(r#"{{"name":"img-{i}","scene":{SCENE_AB}}}"#),
                ),
            );
        }

        // Same-count target: 200 no-op, nothing started.
        let resp = handle(
            &state,
            &request(Method::Post, "/admin/reshard", r#"{"shards":2}"#),
        );
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8(resp.body)
            .unwrap()
            .contains("\"started\":false"));

        // Growth: accepted, runs in the background, lands on 4 shards.
        let resp = handle(
            &state,
            &request(Method::Post, "/admin/reshard", r#"{"shards":4,"batch":3}"#),
        );
        assert_eq!(
            resp.status,
            202,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        assert!(String::from_utf8(resp.body)
            .unwrap()
            .contains("\"started\":true"));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while (state.db.resharding() || state.db.shard_count() != 4)
            && std::time::Instant::now() < deadline
        {
            std::thread::yield_now();
        }
        assert_eq!(state.db.shard_count(), 4);
        assert_eq!(state.db.len(), 12);

        // Stats report the finished migration.
        let resp = handle(&state, &request(Method::Get, "/stats", ""));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"shards\":4"), "{body}");
        assert!(body.contains("\"reshard_active\":false"), "{body}");
        assert!(body.contains("\"reshard_from\":2"), "{body}");
        assert!(body.contains("\"reshard_to\":4"), "{body}");
        assert!(body.contains("\"reshard_migrated_ids\":12"), "{body}");

        // Searches still answer with the full corpus.
        let resp = handle(
            &state,
            &request(
                Method::Post,
                "/search",
                &format!(r#"{{"scene":{SCENE_AB},"options":{{"top_k":null}}}}"#),
            ),
        );
        assert_eq!(resp.status, 200);

        // Malformed bodies are 400.
        let resp = handle(
            &state,
            &request(Method::Post, "/admin/reshard", r#"{"shards":0}"#),
        );
        assert_eq!(resp.status, 400);
    }
}
