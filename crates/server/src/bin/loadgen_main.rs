//! The `loadgen` binary: drive a running `be2d-server` and report
//! throughput + latency percentiles.
//!
//! ```text
//! loadgen --addr 127.0.0.1:PORT [--requests N] [--connections N]
//!         [--rate R] [--mix insert=2,search=8] [--seed S]
//!         [--prefill N] [--out BENCH_server.json]
//! ```
//!
//! Exits non-zero when any request errored, so CI can assert a clean
//! run.

use be2d_server::LoadgenConfig;
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;

fn usage() -> &'static str {
    "loadgen — drive a be2d-server with a mixed workload over real sockets\n\
     \n\
     options:\n\
       --addr HOST:PORT    server address (required)\n\
       --requests N        total requests (default 1000)\n\
       --connections N     concurrent connections (default 4)\n\
       --rate R            open-loop req/s across all connections (default 0 = closed loop)\n\
       --mix SPEC          op mix: a preset (serving | read-heavy | churn) or weights,\n\
                           e.g. insert=15,search=70,sketch=5 (default: serving)\n\
       --skew SPEC         hot/cold target skew: P (hot prob, 10% hot prefix),\n\
                           P/F (explicit hot fraction) or P/sN (hot = ids divisible\n\
                           by N; N = server shards aims edits at shard 0). default: uniform\n\
       --seed S            master seed (default 42)\n\
       --prefill N         images inserted before the timed run (default 64)\n\
       --reshard-to N      fire POST /admin/reshard to N shards mid-run and\n\
                           require the migration to finish (default: off)\n\
       --reshard-after K   completed requests before the reshard fires\n\
                           (default 0 = immediately)\n\
       --reshard-batch B   batch-size override for the reshard request\n\
                           (default: the server's configured batch)\n\
       --api v1|legacy     drive the versioned /v1/ paths or the deprecated\n\
                           legacy aliases (default: legacy)\n\
       --trace-sample N    every Nth search asks the server for its per-stage\n\
                           timing breakdown, aggregated into the report\n\
                           (default 0 = off)\n\
       --scrape-metrics    scrape GET /v1/metrics before and after the timed\n\
                           run and fold the counter deltas (requests by status\n\
                           class, bound pruning, planner skips) into the report\n\
       --out PATH          write the JSON report here (default BENCH_server.json)\n\
       --help              this text\n"
}

fn parse_args(args: &[String]) -> Result<(LoadgenConfig, String), String> {
    let mut addr: Option<SocketAddr> = None;
    let mut out = "BENCH_server.json".to_owned();
    let mut overrides: Vec<(String, String)> = Vec::new();
    let mut scrape_metrics = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        // Boolean flag: no value follows.
        if flag == "--scrape-metrics" {
            scrape_metrics = true;
            continue;
        }
        let value = it
            .next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--addr" => {
                addr = value
                    .to_socket_addrs()
                    .map_err(|e| format!("cannot resolve {value:?}: {e}"))?
                    .next();
            }
            "--out" => out = value,
            "--requests" | "--connections" | "--rate" | "--mix" | "--skew" | "--seed"
            | "--prefill" | "--reshard-to" | "--reshard-after" | "--reshard-batch" | "--api"
            | "--trace-sample" => {
                overrides.push((flag.clone(), value));
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let addr = addr.ok_or_else(|| "--addr is required".to_owned())?;
    let mut config = LoadgenConfig::new(addr);
    config.scrape_metrics = scrape_metrics;
    for (flag, value) in overrides {
        match flag.as_str() {
            "--requests" => {
                config.requests = value
                    .parse()
                    .map_err(|_| "--requests must be a number".to_owned())?;
            }
            "--connections" => {
                config.connections = value
                    .parse()
                    .map_err(|_| "--connections must be a number".to_owned())?;
            }
            "--rate" => {
                config.rate = value
                    .parse()
                    .map_err(|_| "--rate must be a number".to_owned())?;
            }
            "--mix" => config.mix = value.parse()?,
            "--skew" => config.skew = value.parse()?,
            "--seed" => {
                config.seed = value
                    .parse()
                    .map_err(|_| "--seed must be a number".to_owned())?;
            }
            "--prefill" => {
                config.prefill = value
                    .parse()
                    .map_err(|_| "--prefill must be a number".to_owned())?;
            }
            "--reshard-to" => {
                config.reshard_to = value
                    .parse()
                    .map_err(|_| "--reshard-to must be a number".to_owned())?;
            }
            "--reshard-after" => {
                config.reshard_after = value
                    .parse()
                    .map_err(|_| "--reshard-after must be a number".to_owned())?;
            }
            "--reshard-batch" => {
                config.reshard_batch = value
                    .parse()
                    .map_err(|_| "--reshard-batch must be a number".to_owned())?;
            }
            "--trace-sample" => {
                config.trace_sample = value
                    .parse()
                    .map_err(|_| "--trace-sample must be a number".to_owned())?;
            }
            "--api" => {
                config.api_v1 = match value.as_str() {
                    "v1" => true,
                    "legacy" => false,
                    other => return Err(format!("--api must be v1 or legacy, got {other:?}")),
                };
            }
            _ => unreachable!("filtered above"),
        }
    }
    Ok((config, out))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, out) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) if message.is_empty() => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    println!(
        "loadgen: {} requests, {} connections, mix {} → {}",
        config.requests, config.connections, config.mix, config.addr
    );
    let report = match be2d_server::loadgen::run(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: loadgen failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.summary());
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("report written to {out}");
    if report.errors > 0 {
        eprintln!(
            "error: {} of {} requests failed",
            report.errors, report.requests
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
