//! The `be2d-server` binary: boot the HTTP retrieval service.
//!
//! ```text
//! be2d-server [--addr 127.0.0.1:0] [--threads N] [--queue N]
//!             [--keep-alive N] [--db snapshot.json] [--snapshot path.json]
//! ```
//!
//! Prints `be2d-server listening on <addr>` once bound (scripts grep
//! this to learn the ephemeral port) and `be2d-server shutdown complete`
//! after a graceful shutdown.

use be2d_db::{PlannerMode, ReplicatedImageDatabase, ReplicationMode};
use be2d_server::{AdvisorMode, Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> &'static str {
    "be2d-server — HTTP retrieval service over the BE-string image database\n\
     \n\
     options:\n\
       --addr HOST:PORT   bind address (default 127.0.0.1:0; port 0 = ephemeral)\n\
       --threads N        worker threads (default: host parallelism)\n\
       --shards N         database shards: searches scatter-gather, writes lock\n\
                          only the owning shard (default 1)\n\
       --replicas R       replicas per shard: reads round-robin across copies,\n\
                          writes fan out to all; POST /admin/replicas/fail|heal\n\
                          injects and repairs replica faults (default 1)\n\
       --reshard-batch N  ids swept per online-reshard batch when a\n\
                          POST /admin/reshard request names none (default 256)\n\
       --replication MODE write acknowledgement: sync (all healthy replicas,\n\
                          default), quorum (majority), or async[:LAG] (leader\n\
                          only; followers drain in the background, reads stay\n\
                          within LAG ops — default LAG 1024)\n\
       --planner MODE     scatter planner: v2 (selectivity-ordered scatter,\n\
                          per-shard candidate strategy, least-loaded replica\n\
                          routing — default) or naive (index-order scatter\n\
                          for A/B comparison; rankings are identical)\n\
       --oplog-window N   per-shard operation-log window; healed replicas\n\
                          whose gap fits replay just the missed ops instead\n\
                          of cloning (default 1024)\n\
       --wal DIR          write-ahead-log directory: append every mutation,\n\
                          recover snapshot+replay on boot (default: off)\n\
       --wal-fsync-every N fsync the WAL after N records; 1 = every\n\
                          acknowledged write is on disk (default 64)\n\
       --queue N          pending-connection queue before 503 shedding (default 64)\n\
       --slow-queries N   worst traced queries retained for\n\
                          GET /v1/debug/slow_queries; 0 disables (default 32)\n\
       --keep-alive N     requests served per connection (default 256)\n\
       --db PATH          load this snapshot into the database at boot\n\
       --snapshot-dir DIR directory POST /snapshot and /restore are confined to (default .)\n\
       --snapshot NAME    default file name inside the snapshot dir\n\
       --advisor MODE     autopilot advisor: off (default) or dry-run\n\
                          (evaluate windowed signals, journal the admin calls\n\
                          it would issue as advisor_recommendation events,\n\
                          never act)\n\
       --advisor-tick-ms N      interval between advisor evaluations (default 1000)\n\
       --advisor-cooldown-ms N  silence per fired advisor signal (default 30000)\n\
       --slo-p99-ms N     rolling 1-minute p99 latency target for the slo\n\
                          verdict in GET /v1/health (default 250)\n\
       --slo-availability F     availability target in [0,1]; the 5xx error\n\
                          budget is 1-F of windowed requests (default 0.99)\n\
       --help             this text\n\
     \n\
     shutdown: POST /admin/shutdown\n"
}

/// Parses `--replication sync|quorum|async[:LAG]`.
fn parse_replication(value: &str) -> Result<ReplicationMode, String> {
    match value {
        "sync" => Ok(ReplicationMode::Sync),
        "quorum" => Ok(ReplicationMode::Quorum),
        "async" => Ok(ReplicationMode::Async { max_lag: 1024 }),
        other => match other.strip_prefix("async:") {
            Some(lag) => lag
                .parse()
                .map(|max_lag| ReplicationMode::Async { max_lag })
                .map_err(|_| format!("bad async lag {lag:?} (want async:NUMBER)")),
            None => Err(format!(
                "unknown replication mode {other:?} (want sync, quorum, or async[:LAG])"
            )),
        },
    }
}

fn parse_args(args: &[String]) -> Result<(ServerConfig, Option<PathBuf>), String> {
    let mut config = ServerConfig::default();
    let mut preload = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--threads" => {
                config.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be a number".to_owned())?;
            }
            "--shards" => {
                config.shards = value("--shards")?
                    .parse()
                    .map_err(|_| "--shards must be a number".to_owned())?;
            }
            "--replicas" => {
                config.replicas = value("--replicas")?
                    .parse()
                    .map_err(|_| "--replicas must be a number".to_owned())?;
            }
            "--reshard-batch" => {
                config.reshard_batch = value("--reshard-batch")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--reshard-batch must be a positive number".to_owned())?;
            }
            "--replication" => config.replication = parse_replication(&value("--replication")?)?,
            "--planner" => {
                config.planner = match value("--planner")?.as_str() {
                    "v2" => PlannerMode::V2,
                    "naive" => PlannerMode::Naive,
                    other => return Err(format!("unknown planner {other:?} (want v2 or naive)")),
                };
            }
            "--oplog-window" => {
                config.oplog_window = value("--oplog-window")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--oplog-window must be a positive number".to_owned())?;
            }
            "--wal" => config.wal_dir = Some(PathBuf::from(value("--wal")?)),
            "--wal-fsync-every" => {
                config.wal_fsync_every = value("--wal-fsync-every")?
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--wal-fsync-every must be a positive number".to_owned())?;
            }
            "--queue" => {
                config.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue must be a number".to_owned())?;
            }
            "--slow-queries" => {
                config.slow_query_capacity = value("--slow-queries")?
                    .parse()
                    .map_err(|_| "--slow-queries must be a number".to_owned())?;
            }
            "--keep-alive" => {
                config.keep_alive_requests = value("--keep-alive")?
                    .parse()
                    .map_err(|_| "--keep-alive must be a number".to_owned())?;
            }
            "--advisor" => config.advisor = AdvisorMode::parse(&value("--advisor")?)?,
            "--advisor-tick-ms" => {
                config.advisor_tick = value("--advisor-tick-ms")?
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .map(Duration::from_millis)
                    .ok_or_else(|| "--advisor-tick-ms must be a positive number".to_owned())?;
            }
            "--advisor-cooldown-ms" => {
                config.advisor_cooldown = value("--advisor-cooldown-ms")?
                    .parse::<u64>()
                    .ok()
                    .map(Duration::from_millis)
                    .ok_or_else(|| "--advisor-cooldown-ms must be a number".to_owned())?;
            }
            "--slo-p99-ms" => {
                config.slo_p99 = value("--slo-p99-ms")?
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .map(Duration::from_millis)
                    .ok_or_else(|| "--slo-p99-ms must be a positive number".to_owned())?;
            }
            "--slo-availability" => {
                config.slo_availability = value("--slo-availability")?
                    .parse::<f64>()
                    .ok()
                    .filter(|f| (0.0..=1.0).contains(f))
                    .ok_or_else(|| "--slo-availability must be in [0,1]".to_owned())?;
            }
            "--db" => preload = Some(PathBuf::from(value("--db")?)),
            "--snapshot-dir" => config.snapshot_dir = PathBuf::from(value("--snapshot-dir")?),
            "--snapshot" => config.snapshot_file = value("--snapshot")?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok((config, preload))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, preload) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) if message.is_empty() => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    // WAL recovery (anchor snapshot + log replay) happens inside
    // with_config, before any preload or request is served.
    let db = match ReplicatedImageDatabase::with_config(config.replica_config()) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: cannot open database: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &preload {
        // A preload file may be a plain snapshot or a sharded
        // manifest; restore_from handles both and re-routes records
        // into the configured shard topology (every replica gets the
        // restored state).
        match db.restore_from(path) {
            Ok(records) => {
                eprintln!(
                    "loaded {records} records from {} into {} shard(s) x {} replica(s)",
                    path.display(),
                    db.shard_count(),
                    db.replica_count()
                );
            }
            Err(e) => {
                eprintln!("error: cannot load {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let server = match Server::with_database(config, db) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("be2d-server listening on {}", server.local_addr());
    // Line-buffer workaround: make sure the address line is visible to
    // scripts that poll the log before the first request arrives.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    match server.run() {
        Ok(()) => {
            println!("be2d-server shutdown complete");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: server failed: {e}");
            ExitCode::FAILURE
        }
    }
}
