//! A bounded-queue thread pool.
//!
//! The server hands each accepted connection to this pool. The queue is
//! *bounded*: when every worker is busy and the queue is full,
//! [`ThreadPool::try_execute`] refuses the job immediately instead of
//! buffering unbounded work — the accept loop turns that refusal into
//! `503 Service Unavailable`, which is the overload-shedding behaviour a
//! service under "heavy traffic from millions of users" needs.
//!
//! Built on `std::sync::{Mutex, Condvar}` only (the vendored
//! `parking_lot` shim has no condition variables, and the build is
//! offline).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a job was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Every worker is busy and the queue is at capacity.
    QueueFull,
    /// [`ThreadPool::shutdown`] has begun; no new work is accepted.
    ShuttingDown,
}

struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when the queue gains a job or shutdown begins.
    wake: Condvar,
}

/// A fixed-size worker pool with a bounded job queue.
///
/// # Example
///
/// ```
/// use be2d_server::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = ThreadPool::new(2, 8);
/// let done = Arc::new(AtomicUsize::new(0));
/// for _ in 0..8 {
///     let done = done.clone();
///     pool.try_execute(move || {
///         done.fetch_add(1, Ordering::SeqCst);
///     })
///     .expect("queue has room");
/// }
/// pool.shutdown();
/// assert_eq!(done.load(Ordering::SeqCst), 8);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    capacity: usize,
}

impl ThreadPool {
    /// Spawns `threads` workers with room for `queue_capacity` queued
    /// jobs (on top of the jobs the workers are running).
    ///
    /// # Panics
    ///
    /// Panics when `threads` is 0.
    #[must_use]
    pub fn new(threads: usize, queue_capacity: usize) -> ThreadPool {
        assert!(threads > 0, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("be2d-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            capacity: queue_capacity,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently waiting for a worker.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("pool lock").queue.len()
    }

    /// Submits a job, refusing instead of blocking when the queue is
    /// full or the pool is shutting down.
    ///
    /// # Errors
    ///
    /// Returns the [`RejectReason`]; the job is dropped in that case.
    pub fn try_execute<F>(&self, job: F) -> Result<(), RejectReason>
    where
        F: FnOnce() + Send + 'static,
    {
        let mut state = self.shared.state.lock().expect("pool lock");
        if state.shutdown {
            return Err(RejectReason::ShuttingDown);
        }
        if state.queue.len() >= self.capacity {
            return Err(RejectReason::QueueFull);
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Graceful shutdown: stops accepting jobs, lets workers drain every
    /// queued job, then joins them. Idempotent.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shared.state.lock().expect("pool lock").shutdown = true;
        self.shared.wake.notify_all();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // `shutdown()` drains `workers`, making this a no-op; a pool
        // dropped without it still winds down cleanly.
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.wake.wait(state).expect("pool lock");
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = ThreadPool::new(4, 128);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let done = done.clone();
            pool.try_execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let pool = ThreadPool::new(1, 1);
        // Occupy the single worker until we release it.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_execute(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap();

        // One job fits in the queue; the next is rejected.
        pool.try_execute(|| {}).unwrap();
        let rejected = pool.try_execute(|| {});
        assert_eq!(rejected.unwrap_err(), RejectReason::QueueFull);
        assert_eq!(pool.queued(), 1);

        release_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = ThreadPool::new(1, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let done = done.clone();
            pool.try_execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 50, "queued jobs completed");
    }

    #[test]
    fn drop_without_shutdown_still_joins() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2, 16);
            for _ in 0..10 {
                let done = done.clone();
                pool.try_execute(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
            }
            assert_eq!(pool.thread_count(), 2);
        }
        assert_eq!(done.load(Ordering::SeqCst), 10);
    }
}
