//! The server proper: accept loop, connection lifecycle, graceful
//! shutdown.

use crate::advisor::{AdvisorEngine, AdvisorMode, AdvisorSignals};
use crate::handlers::{handle, AppState};
use crate::health::{slo_verdict, Verdict, W1M, WINDOW_EPOCH};
use crate::http::{read_request, ParseLimits, Response};
use crate::pool::ThreadPool;
use crate::ServerConfig;
use be2d_db::{EventKind, ReplicatedImageDatabase};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// A bound, not-yet-running HTTP service over one
/// [`ReplicatedImageDatabase`].
///
/// # Example
///
/// ```no_run
/// use be2d_server::{Server, ServerConfig};
///
/// # fn main() -> std::io::Result<()> {
/// let server = Server::bind(ServerConfig::default())?;
/// println!("listening on {}", server.local_addr());
/// server.run()?; // blocks until POST /admin/shutdown
/// # Ok(())
/// # }
/// ```
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    pool: ThreadPool,
    addr: SocketAddr,
}

/// A cheap handle for shutting a running server down from another
/// thread (tests, signal bridges, the loadgen harness).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<AppState>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The server's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown: stop accepting, drain in-flight
    /// connections, then return from [`Server::run`].
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }
}

impl Server {
    /// Binds a fresh empty database of `config.shards` shards ×
    /// `config.replicas` replicas, replicating per
    /// `config.replication` and (when `config.wal_dir` is set)
    /// recovering from / logging to the write-ahead log.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors and WAL recovery failures.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let db = ReplicatedImageDatabase::with_config(config.replica_config())
            .map_err(io::Error::other)?;
        Server::with_database(config, db)
    }

    /// Binds over an existing (possibly pre-loaded) database. The
    /// database's own topology wins over `config.shards`/`config.replicas`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn with_database(config: ServerConfig, db: ReplicatedImageDatabase) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let threads = config.effective_threads();
        let pool = ThreadPool::new(threads, config.queue_capacity);
        let state = AppState::new(db, config, threads, addr);
        spawn_health_ticker(&state);
        Ok(Server {
            listener,
            state,
            pool,
            addr,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for requesting shutdown from elsewhere.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
            addr: self.addr,
        }
    }

    /// Shared access to the underlying database (e.g. to pre-load
    /// records before serving).
    #[must_use]
    pub fn database(&self) -> ReplicatedImageDatabase {
        self.state.db.clone()
    }

    /// Serves until graceful shutdown is requested via
    /// `POST /admin/shutdown` or a [`ServerHandle`].
    ///
    /// Each accepted connection becomes one bounded-pool job serving up
    /// to `keep_alive_requests` requests; when the pool (workers +
    /// queue) is saturated the connection is immediately answered `503`
    /// and closed — overload sheds instead of queueing unboundedly.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O errors (individual connection errors
    /// only close that connection).
    pub fn run(self) -> io::Result<()> {
        for incoming in self.listener.incoming() {
            if self.state.shutting_down() {
                break;
            }
            let stream = match incoming {
                Ok(stream) => stream,
                // Transient per-connection failures must not kill the
                // accept loop.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            };
            let state = Arc::clone(&self.state);
            // The job takes ownership of the stream; keep a dup'd handle
            // so a rejected connection can still be answered 503.
            let shed_handle = stream.try_clone().ok();
            let accepted = std::time::Instant::now();
            if self
                .pool
                .try_execute(move || {
                    // Time from accept to a worker picking the job up:
                    // the queue-wait component of request latency.
                    state.http_metrics.queue_wait.record(accepted.elapsed());
                    serve_connection(&state, stream)
                })
                .is_err()
            {
                self.state.stats.shed.fetch_add(1, Ordering::Relaxed);
                if let Some(mut stream) = shed_handle {
                    let _ = stream.set_write_timeout(Some(self.state.config.write_timeout));
                    let _ = Response::error(503, "server overloaded, connection shed")
                        .write_to(&mut stream, false);
                }
            }
            self.state
                .http_metrics
                .queue_depth
                .set(i64::try_from(self.pool.queued()).unwrap_or(i64::MAX));
        }
        self.pool.shutdown();
        Ok(())
    }
}

/// Spawns the `be2d-health` background thread: rotates the rolling
/// request windows once per [`WINDOW_EPOCH`], journals `slo_burn`
/// events on ok→burn transitions of the 1-minute SLO verdict, and —
/// when the advisor is in dry-run mode — evaluates the windowed
/// signals each `advisor_tick`, journaling the admin calls it *would*
/// issue. The thread holds only a [`Weak`] reference: it exits within
/// one poll interval of the server state being dropped or shutdown
/// being requested, and it never issues an admin call itself.
fn spawn_health_ticker(state: &Arc<AppState>) {
    let weak: Weak<AppState> = Arc::downgrade(state);
    let config = state.config.clone();
    // Hysteresis of 2: a condition must survive two consecutive
    // advisor ticks before it is worth a journal entry.
    let mut engine = AdvisorEngine::new(2, config.advisor_cooldown, config.advisor_tick);
    let poll = config
        .advisor_tick
        .min(Duration::from_millis(250))
        .max(Duration::from_millis(10));
    let _ = std::thread::Builder::new()
        .name("be2d-health".into())
        .spawn(move || {
            let mut last_window = Instant::now();
            let mut last_advisor = Instant::now();
            let mut slo_burning = false;
            loop {
                std::thread::sleep(poll);
                let Some(state) = weak.upgrade() else { return };
                if state.shutting_down() {
                    return;
                }
                if last_window.elapsed() >= WINDOW_EPOCH {
                    last_window = Instant::now();
                    state.windows.tick();
                    let summary = state.windows.summary(W1M);
                    let (verdict, detail) =
                        slo_verdict(&summary, config.slo_p99, config.slo_availability);
                    let burning = verdict >= Verdict::Degraded;
                    if burning && !slo_burning {
                        let budget = (1.0 - config.slo_availability.clamp(0.0, 1.0)).max(1e-9);
                        let signal = if summary.error_ratio > budget {
                            "availability"
                        } else {
                            "latency_p99"
                        };
                        state.db.events().record(EventKind::SloBurn {
                            signal: signal.into(),
                            detail,
                        });
                    }
                    slo_burning = burning;
                }
                if config.advisor == AdvisorMode::DryRun
                    && last_advisor.elapsed() >= config.advisor_tick
                {
                    last_advisor = Instant::now();
                    let (slo, _) = slo_verdict(
                        &state.windows.summary(W1M),
                        config.slo_p99,
                        config.slo_availability,
                    );
                    let signals = AdvisorSignals {
                        replica_health: state.db.replica_health(),
                        shard_records: state.db.stats().shard_records,
                        resharding: state.db.resharding(),
                        slo,
                    };
                    for rec in engine.observe(&signals) {
                        state.db.events().record(EventKind::AdvisorRecommendation {
                            action: rec.action,
                            target: rec.target,
                            reason: rec.reason,
                        });
                    }
                }
            }
        });
}

/// Serves one connection: keep-alive request loop with limits and
/// timeouts from the config.
fn serve_connection(state: &AppState, mut stream: TcpStream) {
    let config = &state.config;
    let limits = ParseLimits {
        max_head_bytes: config.max_head_bytes,
        max_body_bytes: config.max_body_bytes,
    };
    // Two timeout layers: the socket timeout bounds each syscall (and
    // the idle wait for the next keep-alive request); the request
    // budget inside read_request bounds the whole request, so a client
    // trickling bytes cannot pin this worker past it.
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_nodelay(true);

    let mut buf: Vec<u8> = Vec::with_capacity(4 * 1024);
    for served in 1..=config.keep_alive_requests {
        let request = match read_request(&mut stream, &mut buf, &limits, config.request_timeout) {
            Ok(Some(request)) => request,
            // Clean hangup between requests.
            Ok(None) => return,
            Err(Ok(http_error)) => {
                let response = Response::error(http_error.status(), &http_error.to_string());
                let _ = response.write_to(&mut stream, false);
                return;
            }
            // Timeout or socket error: nothing sensible to answer.
            Err(Err(_io)) => return,
        };
        let response = handle(state, &request);
        let keep_alive =
            !request.wants_close() && served < config.keep_alive_requests && !state.shutting_down();
        if response.write_to(&mut stream, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::time::Duration;

    fn test_config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            read_timeout: Duration::from_millis(1500),
            write_timeout: Duration::from_millis(1500),
            ..ServerConfig::default()
        }
    }

    /// Raw-socket request against a running server.
    fn raw_roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn boots_serves_and_shuts_down() {
        let server = Server::bind(test_config()).unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());

        let reply = raw_roundtrip(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains("\"status\":\"ok\""));

        handle.shutdown();
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        let server = Server::bind(test_config()).unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());

        let reply = raw_roundtrip(addr, "BOGUS stuff\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

        handle.shutdown();
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn dry_run_advisor_journals_recommendations_without_acting() {
        let server = Server::bind(ServerConfig {
            shards: 2,
            replicas: 2,
            advisor: AdvisorMode::DryRun,
            advisor_tick: Duration::from_millis(20),
            advisor_cooldown: Duration::from_millis(500),
            ..test_config()
        })
        .unwrap();
        let db = server.database();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run());

        db.fail_replica(0, 1).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (events, _) = db.events().since(0);
            if events.iter().any(|e| {
                matches!(
                    &e.kind,
                    EventKind::AdvisorRecommendation { action, target, .. }
                        if action == "rebuild_replica" && target == "shard=0,replica=1"
                )
            }) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "advisor never recommended a heal"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // Dry run means dry: the journal has the recommendation but the
        // replica is still out of rotation — nothing acted on it.
        assert!(!db.replica_health()[0][1], "advisor must not heal");

        handle.shutdown();
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn rankings_are_bit_identical_with_and_without_the_advisor() {
        use crate::client::Client;

        let scene = |i: usize| {
            format!(
                r#"{{"width":100,"height":100,"objects":[
                    {{"class":"A","mbr":[{0},{1},10,40]}},
                    {{"class":"B","mbr":[50,90,{0},{1}]}}]}}"#,
                5 + i * 7,
                40 + i * 5
            )
        };
        let mut bodies: Vec<Vec<u8>> = Vec::new();
        for mode in [AdvisorMode::Off, AdvisorMode::DryRun] {
            let server = Server::bind(ServerConfig {
                shards: 2,
                replicas: 2,
                advisor: mode,
                advisor_tick: Duration::from_millis(10),
                advisor_cooldown: Duration::from_millis(50),
                ..test_config()
            })
            .unwrap();
            let addr = server.local_addr();
            let handle = server.handle();
            let runner = std::thread::spawn(move || server.run());

            let mut client = Client::new(addr, Duration::from_secs(5));
            for i in 0..8 {
                let body = format!(r#"{{"name":"img-{i}","scene":{}}}"#, scene(i));
                assert_eq!(
                    client.request("POST", "/v1/images", &body).unwrap().status,
                    201
                );
            }
            // Give the dry-run advisor a few ticks to prove it leaves
            // the database alone.
            std::thread::sleep(Duration::from_millis(60));
            let query = format!(r#"{{"scene":{},"options":{{"top_k":null}}}}"#, scene(3));
            let resp = client.request("POST", "/v1/search", &query).unwrap();
            assert_eq!(resp.status, 200);
            bodies.push(resp.body);

            handle.shutdown();
            runner.join().unwrap().unwrap();
        }
        // Byte-for-byte equal responses: every score's f64 bits match.
        assert_eq!(bodies[0], bodies[1]);
    }

    #[test]
    fn http_shutdown_endpoint_stops_run() {
        let server = Server::bind(test_config()).unwrap();
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run());

        let reply = raw_roundtrip(
            addr,
            "POST /admin/shutdown HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.contains("\"shutting_down\":true"), "{reply}");
        // No follow-up traffic: the endpoint alone must unblock accept.
        runner.join().unwrap().unwrap();
    }
}
