//! The server's Prometheus registry: every metric family `/v1/metrics`
//! exposes, wired to the lock-free handles the request path and the
//! database record into.
//!
//! Naming follows the Prometheus conventions: `be2d_` prefix,
//! `_seconds` histograms (bucket bounds in seconds), `_total` counters.
//! The full table lives in the README's "Observability" section —
//! names are a public, stable API.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::handlers::ServerStats;
use crate::router::Route;
use be2d_db::ReplicatedImageDatabase;
use be2d_metrics::{Counter, Gauge, Histogram, Registry};

/// Stable `route` label values, one per [`Route`] variant plus the
/// `"unmatched"` bucket for 404/405/400-id requests.
pub(crate) const ROUTE_LABELS: [&str; 21] = [
    "insert_image",
    "delete_image",
    "add_object",
    "remove_object",
    "search",
    "search_sketch",
    "stats",
    "stats_v1",
    "healthz",
    "health",
    "metrics",
    "slow_queries",
    "debug_events",
    "checkpoint",
    "snapshot",
    "restore",
    "replica_fail",
    "replica_heal",
    "reshard",
    "shutdown",
    "unmatched",
];

/// Index of a resolved route (or the unmatched bucket) in
/// [`ROUTE_LABELS`].
fn route_index(route: Option<Route>) -> usize {
    match route {
        Some(Route::InsertImage) => 0,
        Some(Route::DeleteImage(_)) => 1,
        Some(Route::AddObject(_)) => 2,
        Some(Route::RemoveObject(_)) => 3,
        Some(Route::Search) => 4,
        Some(Route::SearchSketch) => 5,
        Some(Route::Stats) => 6,
        Some(Route::StatsV1) => 7,
        Some(Route::Health) => 8,
        Some(Route::HealthReport) => 9,
        Some(Route::Metrics) => 10,
        Some(Route::SlowQueries) => 11,
        Some(Route::DebugEvents) => 12,
        Some(Route::Checkpoint) => 13,
        Some(Route::Snapshot) => 14,
        Some(Route::Restore) => 15,
        Some(Route::ReplicaFail) => 16,
        Some(Route::ReplicaHeal) => 17,
        Some(Route::Reshard) => 18,
        Some(Route::Shutdown) => 19,
        None => 20,
    }
}

/// The request path's own metric handles (per-route latency, status
/// classes, queue pressure). Recording is atomics only.
#[derive(Debug)]
pub(crate) struct HttpMetrics {
    /// Request duration per route label, parallel to [`ROUTE_LABELS`].
    request_duration: Vec<Arc<Histogram>>,
    responses_2xx: Arc<Counter>,
    responses_4xx: Arc<Counter>,
    responses_5xx: Arc<Counter>,
    /// Time an accepted connection waited in the pool queue before a
    /// worker picked it up.
    pub(crate) queue_wait: Arc<Histogram>,
    /// Jobs waiting in the pool queue, sampled at each accept.
    pub(crate) queue_depth: Arc<Gauge>,
}

impl HttpMetrics {
    pub(crate) fn new() -> HttpMetrics {
        HttpMetrics {
            request_duration: ROUTE_LABELS
                .iter()
                .map(|_| Arc::new(Histogram::new()))
                .collect(),
            responses_2xx: Arc::new(Counter::new()),
            responses_4xx: Arc::new(Counter::new()),
            responses_5xx: Arc::new(Counter::new()),
            queue_wait: Arc::new(Histogram::new()),
            queue_depth: Arc::new(Gauge::new()),
        }
    }

    /// Records one served request: latency under its route label plus
    /// the status-class counter.
    pub(crate) fn record(&self, route: Option<Route>, status: u16, elapsed: Duration) {
        self.request_duration[route_index(route)].record(elapsed);
        match status {
            500.. => self.responses_5xx.inc(),
            400.. => self.responses_4xx.inc(),
            _ => self.responses_2xx.inc(),
        }
    }
}

/// Builds the registry behind `GET /v1/metrics`: registers the shared
/// HTTP and database handles plus scrape-time callbacks for values
/// derived from existing state (record counts, replication lag,
/// uptime). Called once at server construction; scrapes never touch
/// the hot path.
pub(crate) fn build_registry(
    db: &ReplicatedImageDatabase,
    stats: &Arc<ServerStats>,
    http: &HttpMetrics,
    started: Instant,
) -> Registry {
    let registry = Registry::new();

    // --- request path -----------------------------------------------------
    for (label, hist) in ROUTE_LABELS.iter().zip(&http.request_duration) {
        registry.register_histogram(
            "be2d_http_request_duration_seconds",
            "End-to-end request latency by route",
            &[("route", label)],
            Arc::clone(hist),
        );
    }
    for (class, counter) in [
        ("2xx", &http.responses_2xx),
        ("4xx", &http.responses_4xx),
        ("5xx", &http.responses_5xx),
    ] {
        registry.register_counter(
            "be2d_http_responses_total",
            "Responses by status class",
            &[("class", class)],
            Arc::clone(counter),
        );
    }
    registry.register_histogram(
        "be2d_http_queue_wait_seconds",
        "Time accepted connections waited for a worker",
        &[],
        Arc::clone(&http.queue_wait),
    );
    registry.register_gauge(
        "be2d_http_queue_depth",
        "Connections waiting in the pool queue (sampled at accept)",
        &[],
        Arc::clone(&http.queue_depth),
    );
    let shed = Arc::clone(stats);
    registry.counter_fn(
        "be2d_http_shed_total",
        "Connections shed with 503 because the queue was full",
        &[],
        move || shed.shed.load(std::sync::atomic::Ordering::Relaxed),
    );
    let requests = Arc::clone(stats);
    registry.counter_fn(
        "be2d_http_requests_total",
        "Requests fully served (any status)",
        &[],
        move || requests.requests.load(std::sync::atomic::Ordering::Relaxed),
    );

    // --- database ---------------------------------------------------------
    let m = db.metrics().clone();
    let slots = m.scatter.len();
    for (i, hist) in m.scatter.slots().iter().enumerate() {
        // The final slot absorbs every shard index past the pool.
        let label = if i + 1 == slots {
            format!("{i}+")
        } else {
            i.to_string()
        };
        registry.register_histogram(
            "be2d_db_scatter_duration_seconds",
            "Per-shard scatter scan duration",
            &[("shard", &label)],
            Arc::clone(hist),
        );
    }
    registry.register_histogram(
        "be2d_db_gather_duration_seconds",
        "K-way merge (gather) duration per multi-shard search",
        &[],
        Arc::clone(&m.gather),
    );
    registry.register_histogram(
        "be2d_db_search_duration_seconds",
        "End-to-end database search duration",
        &[],
        Arc::clone(&m.search_total),
    );
    registry.register_histogram(
        "be2d_db_oplog_append_duration_seconds",
        "Logged-mutation duration (leader apply through acks)",
        &[],
        Arc::clone(&m.oplog_append),
    );
    registry.register_histogram(
        "be2d_db_wal_fsync_duration_seconds",
        "WAL sync_data duration (only appends that flushed a batch)",
        &[],
        Arc::clone(&m.wal_fsync),
    );
    registry.register_histogram(
        "be2d_db_checkpoint_duration_seconds",
        "WAL checkpoint duration (anchor snapshot + truncation)",
        &[],
        Arc::clone(&m.checkpoint),
    );
    registry.register_counter(
        "be2d_db_replica_picks_total",
        "Replica read-routing decisions",
        &[],
        Arc::clone(&m.replica_picks),
    );
    registry.register_gauge(
        "be2d_db_outstanding_reads",
        "Reads currently holding a replica read lock",
        &[],
        Arc::clone(&m.outstanding_reads),
    );
    registry.register_counter(
        "be2d_db_replica_fallback_reads_total",
        "Bounded-lag reads that found no in-sync follower and fell back to the leader",
        &[],
        Arc::clone(&m.replica_fallback_reads),
    );
    registry.register_counter(
        "be2d_db_planner_ordered_scatters_total",
        "Multi-shard searches run with a selectivity-ordered scatter",
        &[],
        Arc::clone(&m.planner_ordered_scatters),
    );
    registry.register_counter(
        "be2d_db_planner_dense_scans_total",
        "Per-shard scans where planner v2 chose the dense-scan candidate strategy",
        &[],
        Arc::clone(&m.planner_dense_scans),
    );
    registry.register_counter(
        "be2d_db_stage2_scored_total",
        "Candidates exactly scored (stage-2 survivors of two-stage retrieval)",
        &[],
        Arc::clone(&m.stage2_scored),
    );
    registry.register_counter(
        "be2d_db_bound_pruned_total",
        "Candidates skipped because their admissible score bound excluded them",
        &[],
        Arc::clone(&m.bound_pruned),
    );
    let planner_db = db.clone();
    registry.counter_fn(
        "be2d_db_planner_skipped_total",
        "Shards the scatter planner proved empty and skipped",
        &[],
        move || planner_db.planner_skipped(),
    );
    let records_db = db.clone();
    registry.gauge_fn(
        "be2d_db_records",
        "Live records across all shards",
        &[],
        move || records_db.len() as f64,
    );
    let lag_db = db.clone();
    registry.gauge_fn(
        "be2d_db_replication_max_lag",
        "Worst healthy-replica apply lag in op-log sequences",
        &[],
        move || {
            lag_db
                .replication_stats()
                .shards
                .iter()
                .flat_map(|s| s.replicas.iter())
                .filter(|r| r.healthy)
                .map(|r| r.lag)
                .max()
                .unwrap_or(0) as f64
        },
    );

    // --- process ----------------------------------------------------------
    registry.gauge_fn(
        "be2d_uptime_seconds",
        "Seconds since the server started",
        &[],
        move || started.elapsed().as_secs_f64(),
    );
    registry
        .gauge(
            "be2d_build_info",
            "Build metadata carried in labels; value is always 1",
            &[("version", env!("CARGO_PKG_VERSION"))],
        )
        .set(1);

    registry
}
