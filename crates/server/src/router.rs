//! Route table: method + path → handler dispatch token.

use crate::http::Method;
use be2d_db::RecordId;

/// A resolved route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /images` — index a scene or symbolic image.
    InsertImage,
    /// `DELETE /images/{id}` — drop a stored image.
    DeleteImage(RecordId),
    /// `POST /images/{id}/objects` — §3.2 incremental object insert.
    AddObject(RecordId),
    /// `DELETE /images/{id}/objects` — §3.2 incremental object removal.
    RemoveObject(RecordId),
    /// `POST /search` — ranked similarity search (scene or text query).
    Search,
    /// `POST /search/sketch` — spatial-pattern sketch search.
    SearchSketch,
    /// `GET /stats` — service statistics.
    Stats,
    /// `GET /healthz` — liveness probe.
    Health,
    /// `POST /snapshot` — persist a consistent snapshot to disk.
    Snapshot,
    /// `POST /restore` — replace the database from a snapshot file.
    Restore,
    /// `POST /admin/replicas/fail` — take a replica out of rotation
    /// (fault injection).
    ReplicaFail,
    /// `POST /admin/replicas/heal` — rebuild a failed replica from a
    /// healthy peer and rejoin it.
    ReplicaHeal,
    /// `POST /admin/reshard` — start an online reshard to a new shard
    /// count (progress in `GET /stats`).
    Reshard,
    /// `POST /admin/shutdown` — begin graceful shutdown.
    Shutdown,
}

/// Why no route matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// Unknown path (404).
    NotFound,
    /// Known path, wrong method (405).
    MethodNotAllowed,
    /// An `{id}` segment is not a number (400).
    BadId(String),
}

impl RouteError {
    /// The HTTP status this error maps to.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            RouteError::NotFound => 404,
            RouteError::MethodNotAllowed => 405,
            RouteError::BadId(_) => 400,
        }
    }

    /// Human-readable reason for the error envelope.
    #[must_use]
    pub fn message(&self) -> String {
        match self {
            RouteError::NotFound => "no such route".into(),
            RouteError::MethodNotAllowed => "method not allowed for this route".into(),
            RouteError::BadId(raw) => format!("invalid record id {raw:?}"),
        }
    }
}

/// Resolves a request's method + path to a [`Route`].
///
/// # Errors
///
/// Returns [`RouteError`] when nothing matches.
pub fn route(method: Method, path: &str) -> Result<Route, RouteError> {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let id = |raw: &str| -> Result<RecordId, RouteError> {
        raw.parse::<usize>()
            .map(RecordId)
            .map_err(|_| RouteError::BadId(raw.to_owned()))
    };
    match segments.as_slice() {
        ["images"] => match method {
            Method::Post => Ok(Route::InsertImage),
            _ => Err(RouteError::MethodNotAllowed),
        },
        ["images", raw] => match method {
            Method::Delete => Ok(Route::DeleteImage(id(raw)?)),
            _ => Err(RouteError::MethodNotAllowed),
        },
        ["images", raw, "objects"] => match method {
            Method::Post => Ok(Route::AddObject(id(raw)?)),
            Method::Delete => Ok(Route::RemoveObject(id(raw)?)),
            _ => Err(RouteError::MethodNotAllowed),
        },
        ["search"] => match method {
            Method::Post => Ok(Route::Search),
            _ => Err(RouteError::MethodNotAllowed),
        },
        ["search", "sketch"] => match method {
            Method::Post => Ok(Route::SearchSketch),
            _ => Err(RouteError::MethodNotAllowed),
        },
        ["stats"] => match method {
            Method::Get => Ok(Route::Stats),
            _ => Err(RouteError::MethodNotAllowed),
        },
        ["healthz"] => match method {
            Method::Get => Ok(Route::Health),
            _ => Err(RouteError::MethodNotAllowed),
        },
        ["snapshot"] => match method {
            Method::Post => Ok(Route::Snapshot),
            _ => Err(RouteError::MethodNotAllowed),
        },
        ["restore"] => match method {
            Method::Post => Ok(Route::Restore),
            _ => Err(RouteError::MethodNotAllowed),
        },
        ["admin", "replicas", "fail"] => match method {
            Method::Post => Ok(Route::ReplicaFail),
            _ => Err(RouteError::MethodNotAllowed),
        },
        ["admin", "replicas", "heal"] => match method {
            Method::Post => Ok(Route::ReplicaHeal),
            _ => Err(RouteError::MethodNotAllowed),
        },
        ["admin", "reshard"] => match method {
            Method::Post => Ok(Route::Reshard),
            _ => Err(RouteError::MethodNotAllowed),
        },
        ["admin", "shutdown"] => match method {
            Method::Post => Ok(Route::Shutdown),
            _ => Err(RouteError::MethodNotAllowed),
        },
        _ => Err(RouteError::NotFound),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_resolve() {
        assert_eq!(route(Method::Post, "/images"), Ok(Route::InsertImage));
        assert_eq!(
            route(Method::Delete, "/images/7"),
            Ok(Route::DeleteImage(RecordId(7)))
        );
        assert_eq!(
            route(Method::Post, "/images/3/objects"),
            Ok(Route::AddObject(RecordId(3)))
        );
        assert_eq!(
            route(Method::Delete, "/images/3/objects"),
            Ok(Route::RemoveObject(RecordId(3)))
        );
        assert_eq!(route(Method::Post, "/search"), Ok(Route::Search));
        assert_eq!(
            route(Method::Post, "/search/sketch"),
            Ok(Route::SearchSketch)
        );
        assert_eq!(route(Method::Get, "/stats"), Ok(Route::Stats));
        assert_eq!(route(Method::Get, "/healthz"), Ok(Route::Health));
        assert_eq!(route(Method::Post, "/snapshot"), Ok(Route::Snapshot));
        assert_eq!(route(Method::Post, "/restore"), Ok(Route::Restore));
        assert_eq!(route(Method::Post, "/admin/shutdown"), Ok(Route::Shutdown));
        assert_eq!(
            route(Method::Post, "/admin/replicas/fail"),
            Ok(Route::ReplicaFail)
        );
        assert_eq!(
            route(Method::Post, "/admin/replicas/heal"),
            Ok(Route::ReplicaHeal)
        );
        assert_eq!(route(Method::Post, "/admin/reshard"), Ok(Route::Reshard));
        assert_eq!(
            route(Method::Get, "/admin/replicas/fail").unwrap_err(),
            RouteError::MethodNotAllowed
        );
        assert_eq!(
            route(Method::Get, "/admin/reshard").unwrap_err(),
            RouteError::MethodNotAllowed
        );
        // trailing slashes are tolerated
        assert_eq!(route(Method::Get, "/healthz/"), Ok(Route::Health));
    }

    #[test]
    fn error_mapping() {
        assert_eq!(
            route(Method::Get, "/nope").unwrap_err(),
            RouteError::NotFound
        );
        assert_eq!(
            route(Method::Get, "/images").unwrap_err(),
            RouteError::MethodNotAllowed
        );
        assert_eq!(
            route(Method::Delete, "/search").unwrap_err(),
            RouteError::MethodNotAllowed
        );
        let bad = route(Method::Delete, "/images/xyz").unwrap_err();
        assert_eq!(bad.status(), 400);
        assert!(bad.message().contains("xyz"));
        assert_eq!(RouteError::NotFound.status(), 404);
        assert_eq!(RouteError::MethodNotAllowed.status(), 405);
    }
}
