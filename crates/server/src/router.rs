//! Route table: method + path → handler dispatch token.
//!
//! The API is versioned: every route lives under `/v1/...`, and the
//! original unversioned paths remain as **deprecated aliases** that
//! resolve to the same handlers but are answered with a
//! `deprecation: true` header. The one shape difference is `/stats`:
//! the legacy path keeps the original flat counter object, while
//! `GET /v1/stats` returns the nested sections (topology, replication,
//! planner, reshard, oplog, service).

use crate::http::Method;
use be2d_db::RecordId;

/// A resolved route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /v1/images` — index a scene or symbolic image.
    InsertImage,
    /// `DELETE /v1/images/{id}` — drop a stored image.
    DeleteImage(RecordId),
    /// `POST /v1/images/{id}/objects` — §3.2 incremental object insert.
    AddObject(RecordId),
    /// `DELETE /v1/images/{id}/objects` — §3.2 incremental object
    /// removal.
    RemoveObject(RecordId),
    /// `POST /v1/search` — ranked similarity search (scene or text
    /// query).
    Search,
    /// `POST /v1/search/sketch` — spatial-pattern sketch search.
    SearchSketch,
    /// `GET /stats` — the legacy flat statistics object.
    Stats,
    /// `GET /v1/stats` — nested statistics sections.
    StatsV1,
    /// `GET /healthz` — liveness probe (never deprecated).
    Health,
    /// `GET /v1/health` — the full health report: per-subsystem
    /// verdicts plus the worst-verdict rollup.
    HealthReport,
    /// `GET /v1/debug/events` — the structured event journal, polled
    /// incrementally with `?since={seq}`.
    DebugEvents,
    /// `GET /v1/metrics` — Prometheus text exposition of every
    /// registered metric family.
    Metrics,
    /// `GET /v1/debug/slow_queries` — the worst traced queries retained
    /// in the bounded slow-query ring.
    SlowQueries,
    /// `POST /v1/admin/checkpoint` — WAL checkpoint: fresh anchor
    /// snapshot plus on-disk log truncation.
    Checkpoint,
    /// `POST /v1/snapshot` — persist a consistent snapshot to disk.
    Snapshot,
    /// `POST /v1/restore` — replace the database from a snapshot file.
    Restore,
    /// `POST /v1/admin/replicas/fail` — take a replica out of rotation
    /// (fault injection).
    ReplicaFail,
    /// `POST /v1/admin/replicas/heal` — rebuild a failed replica from a
    /// healthy peer and rejoin it.
    ReplicaHeal,
    /// `POST /v1/admin/reshard` — start an online reshard to a new
    /// shard count (progress in `GET /v1/stats`).
    Reshard,
    /// `POST /v1/admin/shutdown` — begin graceful shutdown.
    Shutdown,
}

/// A route plus how the request reached it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolved {
    /// The matched route.
    pub route: Route,
    /// `true` when the request used a legacy unversioned path; the
    /// response gains a `deprecation: true` header.
    pub deprecated: bool,
}

/// Why no route matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// Unknown path (404).
    NotFound,
    /// Known path, wrong method (405).
    MethodNotAllowed,
    /// An `{id}` segment is not a number (400).
    BadId(String),
}

impl RouteError {
    /// The HTTP status this error maps to.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            RouteError::NotFound => 404,
            RouteError::MethodNotAllowed => 405,
            RouteError::BadId(_) => 400,
        }
    }

    /// Human-readable reason for the error envelope.
    #[must_use]
    pub fn message(&self) -> String {
        match self {
            RouteError::NotFound => "no such route".into(),
            RouteError::MethodNotAllowed => "method not allowed for this route".into(),
            RouteError::BadId(raw) => format!("invalid record id {raw:?}"),
        }
    }
}

/// One pattern segment in the route table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Seg {
    /// Matches this literal segment.
    Lit(&'static str),
    /// Matches a numeric `{id}` segment.
    Id,
}

/// One row of the route table.
struct Rule {
    method: Method,
    pattern: &'static [Seg],
    make: fn(Option<RecordId>) -> Route,
}

use Seg::{Id, Lit};

/// The whole API surface, one row per (method, path) pair. Aliasing
/// and versioning live in [`resolve`], not here: the table holds each
/// route exactly once.
const RULES: &[Rule] = &[
    Rule {
        method: Method::Post,
        pattern: &[Lit("images")],
        make: |_| Route::InsertImage,
    },
    Rule {
        method: Method::Delete,
        pattern: &[Lit("images"), Id],
        make: |id| Route::DeleteImage(id.expect("pattern has an id")),
    },
    Rule {
        method: Method::Post,
        pattern: &[Lit("images"), Id, Lit("objects")],
        make: |id| Route::AddObject(id.expect("pattern has an id")),
    },
    Rule {
        method: Method::Delete,
        pattern: &[Lit("images"), Id, Lit("objects")],
        make: |id| Route::RemoveObject(id.expect("pattern has an id")),
    },
    Rule {
        method: Method::Post,
        pattern: &[Lit("search")],
        make: |_| Route::Search,
    },
    Rule {
        method: Method::Post,
        pattern: &[Lit("search"), Lit("sketch")],
        make: |_| Route::SearchSketch,
    },
    Rule {
        method: Method::Get,
        pattern: &[Lit("stats")],
        make: |_| Route::Stats,
    },
    Rule {
        method: Method::Get,
        pattern: &[Lit("healthz")],
        make: |_| Route::Health,
    },
    Rule {
        method: Method::Get,
        pattern: &[Lit("health")],
        make: |_| Route::HealthReport,
    },
    Rule {
        method: Method::Get,
        pattern: &[Lit("metrics")],
        make: |_| Route::Metrics,
    },
    Rule {
        method: Method::Get,
        pattern: &[Lit("debug"), Lit("events")],
        make: |_| Route::DebugEvents,
    },
    Rule {
        method: Method::Get,
        pattern: &[Lit("debug"), Lit("slow_queries")],
        make: |_| Route::SlowQueries,
    },
    Rule {
        method: Method::Post,
        pattern: &[Lit("admin"), Lit("checkpoint")],
        make: |_| Route::Checkpoint,
    },
    Rule {
        method: Method::Post,
        pattern: &[Lit("snapshot")],
        make: |_| Route::Snapshot,
    },
    Rule {
        method: Method::Post,
        pattern: &[Lit("restore")],
        make: |_| Route::Restore,
    },
    Rule {
        method: Method::Post,
        pattern: &[Lit("admin"), Lit("replicas"), Lit("fail")],
        make: |_| Route::ReplicaFail,
    },
    Rule {
        method: Method::Post,
        pattern: &[Lit("admin"), Lit("replicas"), Lit("heal")],
        make: |_| Route::ReplicaHeal,
    },
    Rule {
        method: Method::Post,
        pattern: &[Lit("admin"), Lit("reshard")],
        make: |_| Route::Reshard,
    },
    Rule {
        method: Method::Post,
        pattern: &[Lit("admin"), Lit("shutdown")],
        make: |_| Route::Shutdown,
    },
];

/// Whether `pattern` matches `segments`, capturing the raw `{id}`.
fn matches<'p>(pattern: &[Seg], segments: &[&'p str]) -> Option<Option<&'p str>> {
    if pattern.len() != segments.len() {
        return None;
    }
    let mut raw_id = None;
    for (seg, &actual) in pattern.iter().zip(segments) {
        match seg {
            Lit(lit) => {
                if *lit != actual {
                    return None;
                }
            }
            Id => raw_id = Some(actual),
        }
    }
    Some(raw_id)
}

/// Resolves a request's method + path against the route table,
/// reporting whether the legacy unversioned alias was used.
///
/// # Errors
///
/// Returns [`RouteError`] when nothing matches.
pub fn resolve(method: Method, path: &str) -> Result<Resolved, RouteError> {
    let mut segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let versioned = segments.first() == Some(&"v1");
    if versioned {
        segments.remove(0);
    }

    let mut path_known = false;
    for rule in RULES {
        let Some(raw_id) = matches(rule.pattern, &segments) else {
            continue;
        };
        path_known = true;
        if rule.method != method {
            continue;
        }
        let id = match raw_id {
            Some(raw) => Some(
                raw.parse::<usize>()
                    .map(RecordId)
                    .map_err(|_| RouteError::BadId(raw.to_owned()))?,
            ),
            None => None,
        };
        let route = match (rule.make)(id) {
            // The one version-dependent shape: /v1/stats nests.
            Route::Stats if versioned => Route::StatsV1,
            route => route,
        };
        // The liveness probe is infrastructure, not API surface: the
        // unversioned /healthz stays first-class.
        let deprecated = !versioned && route != Route::Health;
        return Ok(Resolved { route, deprecated });
    }
    Err(if path_known {
        RouteError::MethodNotAllowed
    } else {
        RouteError::NotFound
    })
}

/// [`resolve`] without the version metadata.
///
/// # Errors
///
/// Returns [`RouteError`] when nothing matches.
pub fn route(method: Method, path: &str) -> Result<Route, RouteError> {
    resolve(method, path).map(|r| r.route)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_resolve() {
        assert_eq!(route(Method::Post, "/images"), Ok(Route::InsertImage));
        assert_eq!(
            route(Method::Delete, "/images/7"),
            Ok(Route::DeleteImage(RecordId(7)))
        );
        assert_eq!(
            route(Method::Post, "/images/3/objects"),
            Ok(Route::AddObject(RecordId(3)))
        );
        assert_eq!(
            route(Method::Delete, "/images/3/objects"),
            Ok(Route::RemoveObject(RecordId(3)))
        );
        assert_eq!(route(Method::Post, "/search"), Ok(Route::Search));
        assert_eq!(
            route(Method::Post, "/search/sketch"),
            Ok(Route::SearchSketch)
        );
        assert_eq!(route(Method::Get, "/stats"), Ok(Route::Stats));
        assert_eq!(route(Method::Get, "/healthz"), Ok(Route::Health));
        assert_eq!(route(Method::Post, "/snapshot"), Ok(Route::Snapshot));
        assert_eq!(route(Method::Post, "/restore"), Ok(Route::Restore));
        assert_eq!(route(Method::Post, "/admin/shutdown"), Ok(Route::Shutdown));
        assert_eq!(
            route(Method::Post, "/admin/replicas/fail"),
            Ok(Route::ReplicaFail)
        );
        assert_eq!(
            route(Method::Post, "/admin/replicas/heal"),
            Ok(Route::ReplicaHeal)
        );
        assert_eq!(route(Method::Post, "/admin/reshard"), Ok(Route::Reshard));
        assert_eq!(route(Method::Get, "/v1/metrics"), Ok(Route::Metrics));
        assert_eq!(route(Method::Get, "/v1/health"), Ok(Route::HealthReport));
        assert_eq!(
            route(Method::Get, "/v1/debug/events"),
            Ok(Route::DebugEvents)
        );
        assert_eq!(
            route(Method::Get, "/v1/debug/slow_queries"),
            Ok(Route::SlowQueries)
        );
        assert_eq!(
            route(Method::Post, "/v1/admin/checkpoint"),
            Ok(Route::Checkpoint)
        );
        assert_eq!(
            route(Method::Get, "/admin/replicas/fail").unwrap_err(),
            RouteError::MethodNotAllowed
        );
        assert_eq!(
            route(Method::Get, "/admin/reshard").unwrap_err(),
            RouteError::MethodNotAllowed
        );
        // trailing slashes are tolerated
        assert_eq!(route(Method::Get, "/healthz/"), Ok(Route::Health));
    }

    #[test]
    fn v1_namespace_mirrors_every_route() {
        for (method, legacy) in [
            (Method::Post, "/images"),
            (Method::Delete, "/images/7"),
            (Method::Post, "/images/3/objects"),
            (Method::Delete, "/images/3/objects"),
            (Method::Post, "/search"),
            (Method::Post, "/search/sketch"),
            (Method::Get, "/healthz"),
            (Method::Get, "/health"),
            (Method::Get, "/metrics"),
            (Method::Get, "/debug/slow_queries"),
            (Method::Get, "/debug/events"),
            (Method::Post, "/snapshot"),
            (Method::Post, "/restore"),
            (Method::Post, "/admin/replicas/fail"),
            (Method::Post, "/admin/replicas/heal"),
            (Method::Post, "/admin/reshard"),
            (Method::Post, "/admin/checkpoint"),
            (Method::Post, "/admin/shutdown"),
        ] {
            let old = resolve(method, legacy).unwrap();
            let new = resolve(method, &format!("/v1{legacy}")).unwrap();
            assert_eq!(old.route, new.route, "{legacy}");
            assert!(!new.deprecated, "/v1{legacy} is current");
        }
    }

    #[test]
    fn legacy_paths_are_deprecated_except_healthz() {
        assert!(resolve(Method::Post, "/images").unwrap().deprecated);
        assert!(resolve(Method::Get, "/stats").unwrap().deprecated);
        assert!(!resolve(Method::Get, "/healthz").unwrap().deprecated);
        assert!(!resolve(Method::Get, "/v1/healthz").unwrap().deprecated);
    }

    #[test]
    fn stats_shape_depends_on_version() {
        assert_eq!(route(Method::Get, "/stats"), Ok(Route::Stats));
        assert_eq!(route(Method::Get, "/v1/stats"), Ok(Route::StatsV1));
    }

    #[test]
    fn error_mapping() {
        assert_eq!(
            route(Method::Get, "/nope").unwrap_err(),
            RouteError::NotFound
        );
        assert_eq!(
            route(Method::Get, "/v1/nope").unwrap_err(),
            RouteError::NotFound
        );
        assert_eq!(
            route(Method::Get, "/images").unwrap_err(),
            RouteError::MethodNotAllowed
        );
        assert_eq!(
            route(Method::Get, "/v1/images").unwrap_err(),
            RouteError::MethodNotAllowed
        );
        assert_eq!(
            route(Method::Delete, "/search").unwrap_err(),
            RouteError::MethodNotAllowed
        );
        let bad = route(Method::Delete, "/images/xyz").unwrap_err();
        assert_eq!(bad.status(), 400);
        assert!(bad.message().contains("xyz"));
        assert_eq!(RouteError::NotFound.status(), 404);
        assert_eq!(RouteError::MethodNotAllowed.status(), 405);
    }
}
