//! # be2d-server — the online retrieval service
//!
//! Turns [`ReplicatedImageDatabase`](be2d_db::ReplicatedImageDatabase)
//! into a network-facing service: a dependency-free HTTP/1.1 JSON
//! server on `std::net` (the build is offline — no tokio/hyper) plus a
//! load generator that drives it over real sockets and reports
//! throughput and latency percentiles. With `--shards N` the database
//! is split into N independently locked partitions: searches
//! scatter-gather across all of them while each write locks only the
//! owning shard. With `--replicas R` every shard keeps R copies: reads
//! round-robin across healthy replicas, writes fan out to all of them,
//! and a failed replica can be rebuilt from a healthy peer over the
//! admin API without downtime.
//!
//! The moving parts:
//!
//! * [`Server`] / [`ServerConfig`] — accept loop, keep-alive connection
//!   lifecycle, graceful shutdown (`POST /admin/shutdown` or a
//!   [`ServerHandle`]);
//! * [`ThreadPool`] — bounded-queue workers; a full queue sheds new
//!   connections with `503` instead of buffering unboundedly;
//! * [`http`] — incremental request parser (`Content-Length`, size
//!   limits, pipelining-safe) and response writer;
//! * [`router`] / [`api`] / the handler layer — the endpoint table, the
//!   JSON request/response vocabulary, and their wiring to `be2d-db`;
//! * [`health`] / [`advisor`] — rolling SLO windows, per-subsystem
//!   verdicts behind `GET /v1/health`, and the dry-run autopilot that
//!   journals the admin calls it *would* issue (never acting);
//! * [`client`] — a small blocking HTTP client (loadgen + tests);
//! * [`loadgen`] — the load generator: `be2d-workload` scenes/queries,
//!   a seeded [`RequestMix`](be2d_workload::RequestMix) schedule,
//!   open-loop pacing, `BENCH_server.json` reports.
//!
//! # Endpoints
//!
//! The canonical surface lives under `/v1/`. Every route is also
//! reachable at its historical unversioned path (same handler, same
//! body), but those aliases are deprecated: they answer with a
//! `Deprecation: true` header and may be removed in a future major
//! version. `GET /healthz` is infrastructure, not API, and is neither
//! versioned nor deprecated.
//!
//! | method & path | body | effect |
//! |---|---|---|
//! | `POST /v1/images` | `{"name", "scene"}` or `{"name", "symbolic"}` | index an image |
//! | `DELETE /v1/images/{id}` | — | remove an image |
//! | `POST /v1/images/{id}/objects` | `{"class", "mbr"}` | §3.2 incremental object insert |
//! | `DELETE /v1/images/{id}/objects` | `{"class", "mbr"}` | §3.2 incremental object removal |
//! | `POST /v1/search` | `{"scene"` or `"text", "options"?, "trace"?}` | ranked similarity search; `"trace": true` adds a per-stage timing breakdown |
//! | `POST /v1/search/sketch` | `{"sketch", "options"?, "trace"?}` | spatial-pattern sketch search |
//! | `GET /v1/stats` | — | nested statistics: topology, replication (per-replica lag), planner, reshard, op log, service |
//! | `GET /stats` | — | legacy flat statistics shape (unchanged; still deprecated as a path) |
//! | `GET /v1/metrics` | — | Prometheus text exposition (histograms, counters, gauges) |
//! | `GET /v1/health` | — | per-subsystem health verdicts (shards, replicas, replication lag, WAL, SLO burn) rolled up to `ok`/`degraded`/`critical` |
//! | `GET /v1/debug/slow_queries` | — | the worst traced queries retained in the slow-query ring |
//! | `GET /v1/debug/events` | — | the structured event journal (`?since={seq}` cursor): replica fail/heal, reshard start/finish, WAL checkpoints, SLO burns, advisor recommendations |
//! | `GET /healthz` | — | load-balancer probe: 200 while every shard can serve (`ok`/`degraded`), 503 when any shard has zero healthy replicas |
//! | `POST /v1/admin/checkpoint` | — | WAL checkpoint: fresh anchor snapshot + log truncation |
//! | `POST /v1/snapshot` | `{"path"?}` | crash-safe incremental snapshot to disk |
//! | `POST /v1/restore` | `{"path"?}` | replace the database from a snapshot |
//! | `POST /v1/admin/reshard` | `{"shards", "batch"?}` | start a live migration to a new shard count |
//! | `POST /v1/admin/replicas/fail` | `{"shard", "replica"}` | take a replica out of rotation (fault injection) |
//! | `POST /v1/admin/replicas/heal` | `{"shard", "replica"}` | rebuild a failed replica (op-log replay, clone fallback) |
//! | `POST /v1/admin/shutdown` | — | graceful shutdown |
//!
//! Errors share one envelope:
//! `{"error":{"code":"...","message":"...","retryable":bool}}` with a
//! stable machine-readable `code` (see `README.md` for the full code
//! table).
//!
//! # Example
//!
//! ```
//! use be2d_server::{Server, ServerConfig};
//! use be2d_server::client::Client;
//! use std::time::Duration;
//!
//! # fn main() -> std::io::Result<()> {
//! let server = Server::bind(ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     threads: 2,
//!     ..ServerConfig::default()
//! })?;
//! let addr = server.local_addr();
//! let handle = server.handle();
//! let runner = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::new(addr, Duration::from_secs(5));
//! let body = r#"{"name":"one","scene":{"width":10,"height":10,
//!     "objects":[{"class":"A","mbr":[1,4,1,4]}]}}"#;
//! assert_eq!(client.request("POST", "/images", body)?.status, 201);
//!
//! handle.shutdown();
//! runner.join().expect("server thread").unwrap();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The dry-run autopilot advisor.
pub mod advisor;
pub mod api;
/// Blocking HTTP client for tests and the load generator.
pub mod client;
mod config;
mod handlers;
/// Rolling SLO windows and per-subsystem health verdicts.
pub mod health;
/// HTTP/1.1 wire handling.
pub mod http;
/// The load generator.
pub mod loadgen;
mod metrics;
mod pool;
/// Route resolution.
pub mod router;
mod server;
/// The bounded slow-query ring behind `GET /v1/debug/slow_queries`.
pub mod slowlog;

pub use advisor::{AdvisorEngine, AdvisorMode, AdvisorSignals, Recommendation};
pub use config::ServerConfig;
pub use handlers::{AppState, ServerStats};
pub use health::{HealthReport, ServerWindows, Subsystem, Verdict};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use pool::{RejectReason, ThreadPool};
pub use server::{Server, ServerHandle};
pub use slowlog::{SlowQueryEntry, SlowQueryLog};
