//! The JSON request/response vocabulary of the service.
//!
//! Requests are parsed by hand over the vendored [`serde::Value`] tree
//! rather than derived: the derive in the offline serde shim requires
//! every field to be present, while a usable HTTP API wants optional
//! fields with server-side defaults (`options` entirely omitted, `path`
//! falling back to the configured snapshot target, and so on).
//! Responses are plain named structs using the derived serialiser.

use crate::http::Response;
use be2d_core::SymbolicImage;
use be2d_db::{
    CandidateSource, DbError, Parallelism, PrefilterMode, QueryOptions, QueryTrace, SearchHit,
    TwoStage,
};
use be2d_geometry::{ObjectClass, Rect, Scene, Transform};
use serde::{Deserialize, Serialize, Value};

/// A request-level failure: HTTP status, a stable machine-readable
/// code, and a message for the error envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Response status.
    pub status: u16,
    /// Stable error code (documented in the README API table); clients
    /// branch on this, never on the message text.
    pub code: &'static str,
    /// Human-readable reason.
    pub message: String,
    /// Whether retrying the identical request may succeed (transient
    /// I/O, overload) — `false` for semantic and not-found failures.
    pub retryable: bool,
}

impl ApiError {
    /// An error with an explicit code.
    #[must_use]
    pub fn coded(
        status: u16,
        code: &'static str,
        message: impl Into<String>,
        retryable: bool,
    ) -> ApiError {
        ApiError {
            status,
            code,
            message: message.into(),
            retryable,
        }
    }

    /// A `400 Bad Request` error (`code = "bad_request"`).
    #[must_use]
    pub fn bad(message: impl Into<String>) -> ApiError {
        ApiError::coded(400, "bad_request", message, false)
    }

    /// Maps a database error onto a status and stable code: unknown
    /// record → 404 `unknown_record`, semantic (BE-string / sketch)
    /// failures → 422, replica-health conflicts (bad coordinates, last
    /// healthy copy, no healthy leader) → 409 `replica_conflict`
    /// (retryable — the topology may heal), persistence → 500, I/O →
    /// 500 `io_error` (retryable).
    #[must_use]
    pub fn from_db(e: &DbError) -> ApiError {
        let (status, code, retryable) = match e {
            DbError::UnknownRecord { .. } => (404, "unknown_record", false),
            DbError::BeString(_) => (422, "invalid_be_string", false),
            DbError::Sketch { .. } => (422, "invalid_sketch", false),
            DbError::Replica { .. } => (409, "replica_conflict", true),
            DbError::Persist { .. } => (500, "persist_failed", false),
            DbError::Io(_) => (500, "io_error", true),
            // DbError is #[non_exhaustive]; future variants surface as
            // plain internal errors until given a dedicated code.
            _ => (500, "internal", false),
        };
        ApiError::coded(status, code, e.to_string(), retryable)
    }

    /// Renders the error as a JSON response.
    #[must_use]
    pub fn to_response(&self) -> Response {
        Response::error_coded(self.status, self.code, &self.message, self.retryable)
    }
}

// ---------------------------------------------------------------------------
// Value helpers
// ---------------------------------------------------------------------------

/// Parses a request body (empty bodies count as `{}`).
pub(crate) fn parse_body(body: &[u8]) -> Result<Value, ApiError> {
    if body.iter().all(u8::is_ascii_whitespace) {
        return Ok(Value::Map(Vec::new()));
    }
    let text =
        std::str::from_utf8(body).map_err(|_| ApiError::bad("request body is not valid UTF-8"))?;
    serde_json::from_str(text).map_err(|e| ApiError::bad(format!("invalid JSON body: {e}")))
}

fn as_obj<'v>(v: &'v Value, what: &str) -> Result<&'v [(String, Value)], ApiError> {
    v.as_map()
        .ok_or_else(|| ApiError::bad(format!("{what} must be a JSON object")))
}

fn get<'v>(obj: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .filter(|v| !matches!(v, Value::Null))
}

fn required<'v>(obj: &'v [(String, Value)], key: &str) -> Result<&'v Value, ApiError> {
    get(obj, key).ok_or_else(|| ApiError::bad(format!("missing field {key:?}")))
}

fn as_str<'v>(v: &'v Value, what: &str) -> Result<&'v str, ApiError> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(ApiError::bad(format!(
            "{what} must be a string, got {}",
            other.kind()
        ))),
    }
}

fn as_i64(v: &Value, what: &str) -> Result<i64, ApiError> {
    i64::from_value(v).map_err(|_| ApiError::bad(format!("{what} must be an integer")))
}

fn as_f64(v: &Value, what: &str) -> Result<f64, ApiError> {
    f64::from_value(v).map_err(|_| ApiError::bad(format!("{what} must be a number")))
}

fn as_bool(v: &Value, what: &str) -> Result<bool, ApiError> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(ApiError::bad(format!(
            "{what} must be a boolean, got {}",
            other.kind()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Scenes and objects
// ---------------------------------------------------------------------------

/// Parses the compact scene form:
/// `{"width": W, "height": H, "objects": [{"class": "A", "mbr": [xb, xe, yb, ye]}, …]}`.
pub(crate) fn scene_from_value(v: &Value) -> Result<Scene, ApiError> {
    let obj = as_obj(v, "scene")?;
    let width = as_i64(required(obj, "width")?, "scene.width")?;
    let height = as_i64(required(obj, "height")?, "scene.height")?;
    let mut scene =
        Scene::new(width, height).map_err(|e| ApiError::bad(format!("invalid scene: {e}")))?;
    if let Some(objects) = get(obj, "objects") {
        let items = objects
            .as_seq()
            .ok_or_else(|| ApiError::bad("scene.objects must be an array"))?;
        for item in items {
            let (class, mbr) = object_from_value(item)?;
            scene
                .add(class, mbr)
                .map_err(|e| ApiError::bad(format!("invalid object: {e}")))?;
        }
    }
    Ok(scene)
}

/// Parses one `{"class": "A", "mbr": [xb, xe, yb, ye]}` object.
pub(crate) fn object_from_value(v: &Value) -> Result<(ObjectClass, Rect), ApiError> {
    let obj = as_obj(v, "object")?;
    let name = as_str(required(obj, "class")?, "object.class")?;
    let class = ObjectClass::try_new(name)
        .map_err(|e| ApiError::bad(format!("invalid object class {name:?}: {e}")))?;
    let mbr = required(obj, "mbr")?;
    let coords = mbr
        .as_seq()
        .ok_or_else(|| ApiError::bad("object.mbr must be [x_begin, x_end, y_begin, y_end]"))?;
    let [xb, xe, yb, ye] = coords else {
        return Err(ApiError::bad(format!(
            "object.mbr must have 4 coordinates, got {}",
            coords.len()
        )));
    };
    let rect = Rect::new(
        as_i64(xb, "mbr[0]")?,
        as_i64(xe, "mbr[1]")?,
        as_i64(yb, "mbr[2]")?,
        as_i64(ye, "mbr[3]")?,
    )
    .map_err(|e| ApiError::bad(format!("invalid mbr: {e}")))?;
    Ok((class, rect))
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// `POST /images`: a named scene **or** pre-converted symbolic image.
#[derive(Debug, Clone)]
pub struct InsertRequest {
    /// User-assigned image name.
    pub name: String,
    /// What to store.
    pub image: InsertBody,
}

/// The two accepted insertion payloads.
#[derive(Debug, Clone)]
pub enum InsertBody {
    /// `"scene"`: converted with Algorithm 1 on insert.
    Scene(Scene),
    /// `"symbolic"`: the serialised [`SymbolicImage`] stored form.
    Symbolic(Box<SymbolicImage>),
}

impl InsertRequest {
    /// Parses an insert body.
    ///
    /// # Errors
    ///
    /// Returns 400-level [`ApiError`]s for malformed bodies.
    pub fn from_value(v: &Value) -> Result<InsertRequest, ApiError> {
        let obj = as_obj(v, "body")?;
        let name = as_str(required(obj, "name")?, "name")?.to_owned();
        let image = match (get(obj, "scene"), get(obj, "symbolic")) {
            (Some(scene), None) => InsertBody::Scene(scene_from_value(scene)?),
            (None, Some(sym)) => InsertBody::Symbolic(Box::new(
                SymbolicImage::from_value(sym)
                    .map_err(|e| ApiError::bad(format!("invalid symbolic image: {e}")))?,
            )),
            (Some(_), Some(_)) => {
                return Err(ApiError::bad(
                    "give either \"scene\" or \"symbolic\", not both",
                ))
            }
            (None, None) => return Err(ApiError::bad("missing \"scene\" or \"symbolic\"")),
        };
        Ok(InsertRequest { name, image })
    }
}

/// `POST`/`DELETE /images/{id}/objects`: one object edit.
#[derive(Debug, Clone)]
pub struct ObjectEdit {
    /// The object's class.
    pub class: ObjectClass,
    /// The object's MBR.
    pub mbr: Rect,
}

impl ObjectEdit {
    /// Parses an object-edit body (the object fields live at the top
    /// level: `{"class": "A", "mbr": [..]}`).
    ///
    /// # Errors
    ///
    /// Returns 400-level [`ApiError`]s for malformed bodies.
    pub fn from_value(v: &Value) -> Result<ObjectEdit, ApiError> {
        let (class, mbr) = object_from_value(v)?;
        Ok(ObjectEdit { class, mbr })
    }
}

/// `POST /search`: a query plus optional options.
#[derive(Debug, Clone)]
pub struct SearchRequest {
    /// The query payload.
    pub query: SearchQuery,
    /// Fully resolved options (server defaults filled in).
    pub options: QueryOptions,
    /// `"trace": true` — include the per-stage timing breakdown in the
    /// response. Rankings are bit-identical either way.
    pub trace: bool,
}

/// The accepted search payloads.
#[derive(Debug, Clone)]
pub enum SearchQuery {
    /// `"scene"`: converted on the fly.
    Scene(Scene),
    /// `"text"`: the `Display` rendering of the two BE-strings.
    Text {
        /// The x-axis string (e.g. `"E A_b E A_e E"`).
        u: String,
        /// The y-axis string.
        v: String,
    },
}

impl SearchRequest {
    /// Parses a search body against the server's default options.
    ///
    /// # Errors
    ///
    /// Returns 400-level [`ApiError`]s for malformed bodies.
    pub fn from_value(v: &Value, defaults: &QueryOptions) -> Result<SearchRequest, ApiError> {
        let obj = as_obj(v, "body")?;
        let query = match (get(obj, "scene"), get(obj, "text")) {
            (Some(scene), None) => SearchQuery::Scene(scene_from_value(scene)?),
            (None, Some(text)) => {
                let text = as_obj(text, "text")?;
                SearchQuery::Text {
                    u: as_str(required(text, "u")?, "text.u")?.to_owned(),
                    v: as_str(required(text, "v")?, "text.v")?.to_owned(),
                }
            }
            (Some(_), Some(_)) => {
                return Err(ApiError::bad("give either \"scene\" or \"text\", not both"))
            }
            (None, None) => return Err(ApiError::bad("missing \"scene\" or \"text\" query")),
        };
        let options = options_from_value(get(obj, "options"), defaults)?;
        let trace = match get(obj, "trace") {
            Some(v) => as_bool(v, "trace")?,
            None => false,
        };
        Ok(SearchRequest {
            query,
            options,
            trace,
        })
    }
}

/// `POST /search/sketch`: a sketch text plus optional options.
#[derive(Debug, Clone)]
pub struct SketchRequest {
    /// The sketch source text (e.g. `"A left-of B; B above C"`).
    pub sketch: String,
    /// Fully resolved options.
    pub options: QueryOptions,
    /// `"trace": true` — include the per-stage timing breakdown.
    pub trace: bool,
}

impl SketchRequest {
    /// Parses a sketch-search body.
    ///
    /// # Errors
    ///
    /// Returns 400-level [`ApiError`]s for malformed bodies.
    pub fn from_value(v: &Value, defaults: &QueryOptions) -> Result<SketchRequest, ApiError> {
        let obj = as_obj(v, "body")?;
        let sketch = as_str(required(obj, "sketch")?, "sketch")?.to_owned();
        let options = options_from_value(get(obj, "options"), defaults)?;
        let trace = match get(obj, "trace") {
            Some(v) => as_bool(v, "trace")?,
            None => false,
        };
        Ok(SketchRequest {
            sketch,
            options,
            trace,
        })
    }
}

/// `POST /snapshot` / `POST /restore`: an optional file-name override.
///
/// The name is confined to the server's configured snapshot directory:
/// network peers choose *which* snapshot, never an arbitrary
/// filesystem path.
#[derive(Debug, Clone)]
pub struct PathRequest {
    /// Explicit snapshot file name, when given.
    pub file: Option<String>,
}

impl PathRequest {
    /// Parses `{"path": "name.json"}`, tolerating an empty body.
    ///
    /// # Errors
    ///
    /// Returns 400-level [`ApiError`]s for malformed bodies and for
    /// names that escape the snapshot directory (separators, `..`,
    /// absolute paths).
    pub fn from_value(v: &Value) -> Result<PathRequest, ApiError> {
        let obj = as_obj(v, "body")?;
        let file = match get(obj, "path") {
            Some(p) => {
                let name = as_str(p, "path")?;
                if name.is_empty() || name == "." || name == ".." || name.contains(['/', '\\']) {
                    return Err(ApiError::bad(
                        "path must be a plain file name inside the server's snapshot directory",
                    ));
                }
                Some(name.to_owned())
            }
            None => None,
        };
        Ok(PathRequest { file })
    }
}

/// `POST /admin/replicas/fail` / `POST /admin/replicas/heal`: one
/// replica's coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaRequest {
    /// The shard the replica belongs to.
    pub shard: usize,
    /// The replica index inside the shard.
    pub replica: usize,
}

impl ReplicaRequest {
    /// Parses `{"shard": S, "replica": R}`.
    ///
    /// # Errors
    ///
    /// Returns 400-level [`ApiError`]s for malformed bodies.
    pub fn from_value(v: &Value) -> Result<ReplicaRequest, ApiError> {
        let obj = as_obj(v, "body")?;
        let shard = as_i64(required(obj, "shard")?, "shard")?;
        let replica = as_i64(required(obj, "replica")?, "replica")?;
        let coerce = |raw: i64, what: &str| {
            usize::try_from(raw).map_err(|_| ApiError::bad(format!("{what} must be >= 0")))
        };
        Ok(ReplicaRequest {
            shard: coerce(shard, "shard")?,
            replica: coerce(replica, "replica")?,
        })
    }
}

/// `POST /admin/reshard`: the target shard count plus an optional batch
/// size (ids swept per stop-the-world batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReshardRequest {
    /// The shard count to migrate to (≥ 1).
    pub shards: usize,
    /// Ids swept per batch; the server's configured default when
    /// omitted.
    pub batch: Option<usize>,
}

impl ReshardRequest {
    /// Parses `{"shards": N, "batch": B?}`.
    ///
    /// # Errors
    ///
    /// Returns 400-level [`ApiError`]s for malformed bodies and for a
    /// zero shard count.
    pub fn from_value(v: &Value) -> Result<ReshardRequest, ApiError> {
        let obj = as_obj(v, "body")?;
        let shards = as_i64(required(obj, "shards")?, "shards")?;
        let shards = usize::try_from(shards)
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| ApiError::bad("shards must be >= 1"))?;
        let batch = match get(obj, "batch") {
            Some(b) => Some(
                usize::try_from(as_i64(b, "batch")?)
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| ApiError::bad("batch must be >= 1"))?,
            ),
            None => None,
        };
        Ok(ReshardRequest { shards, batch })
    }
}

// ---------------------------------------------------------------------------
// Query options
// ---------------------------------------------------------------------------

/// Resolves the optional `"options"` object over the server defaults.
///
/// Every field is optional:
/// `{"top_k": 5, "min_score": 0.2, "prefilter": "any-class",
///   "candidates": "class-index", "transforms": "paper-set",
///   "parallel": "auto", "two_stage": 64}`.
///
/// `two_stage` accepts `true` (default frontier), an integer frontier
/// size (`>= 1`), or `null`/`false` to force exhaustive scoring.
///
/// # Errors
///
/// Returns 400-level [`ApiError`]s for unknown names or wrong types.
pub fn options_from_value(
    v: Option<&Value>,
    defaults: &QueryOptions,
) -> Result<QueryOptions, ApiError> {
    let mut options = defaults.clone();
    let Some(v) = v else {
        return Ok(options);
    };
    let obj = as_obj(v, "options")?;
    for (key, value) in obj {
        match key.as_str() {
            "top_k" => {
                options.top_k = match value {
                    Value::Null => None,
                    v => Some(
                        usize::try_from(as_i64(v, "options.top_k")?)
                            .map_err(|_| ApiError::bad("options.top_k must be >= 0"))?,
                    ),
                }
            }
            "min_score" => options.min_score = as_f64(value, "options.min_score")?,
            "prefilter" => {
                options.prefilter = match as_str(value, "options.prefilter")? {
                    "none" => PrefilterMode::None,
                    "any-class" => PrefilterMode::AnyClass,
                    "all-classes" => PrefilterMode::AllClasses,
                    other => {
                        return Err(ApiError::bad(format!(
                            "unknown prefilter {other:?} (none | any-class | all-classes)"
                        )))
                    }
                }
            }
            "candidates" => {
                options.candidates = match as_str(value, "options.candidates")? {
                    "scan" => CandidateSource::Scan,
                    "class-index" => CandidateSource::ClassIndex,
                    other => {
                        return Err(ApiError::bad(format!(
                            "unknown candidate source {other:?} (scan | class-index)"
                        )))
                    }
                }
            }
            "parallel" => {
                options.parallel = match value {
                    Value::Bool(b) => Parallelism::from(*b),
                    Value::Str(s) => match s.as_str() {
                        "off" => Parallelism::Off,
                        "on" => Parallelism::On,
                        "auto" => Parallelism::Auto,
                        other => {
                            return Err(ApiError::bad(format!(
                                "unknown parallelism {other:?} (off | on | auto)"
                            )))
                        }
                    },
                    other => {
                        return Err(ApiError::bad(format!(
                            "options.parallel must be a bool or string, got {}",
                            other.kind()
                        )))
                    }
                }
            }
            "transforms" => options.transforms = transforms_from_value(value)?,
            "two_stage" => {
                options.two_stage = match value {
                    Value::Null | Value::Bool(false) => None,
                    Value::Bool(true) => Some(TwoStage::default()),
                    v => {
                        let frontier = usize::try_from(as_i64(v, "options.two_stage")?)
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| ApiError::bad("options.two_stage must be >= 1"))?;
                        Some(TwoStage { frontier })
                    }
                }
            }
            other => {
                return Err(ApiError::bad(format!("unknown option {other:?}")));
            }
        }
    }
    if options.transforms.is_empty() {
        options.transforms = vec![Transform::Identity];
    }
    Ok(options)
}

/// Parses the transform set: a preset name (`"identity"`, `"paper-set"`,
/// `"all"`) or an explicit array of transform names.
fn transforms_from_value(v: &Value) -> Result<Vec<Transform>, ApiError> {
    match v {
        Value::Str(preset) => match preset.as_str() {
            "identity" => Ok(vec![Transform::Identity]),
            "paper-set" => Ok(Transform::PAPER_SET.to_vec()),
            "all" => Ok(Transform::ALL.to_vec()),
            other => Err(ApiError::bad(format!(
                "unknown transform preset {other:?} (identity | paper-set | all)"
            ))),
        },
        Value::Seq(items) => items
            .iter()
            .map(|item| {
                let name = as_str(item, "options.transforms[]")?;
                parse_transform(name)
                    .ok_or_else(|| ApiError::bad(format!("unknown transform {name:?}")))
            })
            .collect(),
        other => Err(ApiError::bad(format!(
            "options.transforms must be a preset string or array, got {}",
            other.kind()
        ))),
    }
}

/// Parses one transform by its `Display` name.
#[must_use]
pub fn parse_transform(name: &str) -> Option<Transform> {
    Transform::ALL.into_iter().find(|t| t.to_string() == name)
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// One ranked hit in a search response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HitDto {
    /// Stable record id.
    pub id: usize,
    /// The record's user-assigned name.
    pub name: String,
    /// Combined similarity score in `[0, 1]`.
    pub score: f64,
    /// The query transform that achieved the score.
    pub transform: String,
}

/// Body of a search response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResponse {
    /// Ranked hits, best first.
    pub hits: Vec<HitDto>,
}

impl SearchResponse {
    /// Converts ranked [`SearchHit`]s into the wire form.
    #[must_use]
    pub fn from_hits(hits: &[SearchHit]) -> SearchResponse {
        SearchResponse {
            hits: hits
                .iter()
                .map(|h| HitDto {
                    id: h.id.index(),
                    name: h.name.clone(),
                    score: h.score,
                    transform: h.transform.to_string(),
                })
                .collect(),
        }
    }
}

/// One shard's slice of a query trace, in milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardTraceDto {
    /// Physical shard index.
    pub shard: usize,
    /// Replica the read picker chose.
    pub replica: usize,
    /// Position in the planner's visit order (0 = scanned first;
    /// equal to `shard` under the naive index-order scatter).
    pub order: usize,
    /// Whether this shard formed the sequenced first wave of a
    /// selectivity-ordered scatter.
    pub first_wave: bool,
    /// Candidate strategy executed on this shard: `"index-walk"` or
    /// `"dense-scan"`.
    pub strategy: String,
    /// The planner's candidate-count estimate for this shard.
    pub est_candidates: usize,
    /// Whether the planner skipped the scan entirely.
    pub skipped: bool,
    /// Hits the shard contributed before the merge.
    pub hits: usize,
    /// Candidates the shard exactly scored (stage-2 survivors).
    pub scored: usize,
    /// Candidates two-stage retrieval pruned by admissible bound.
    pub bound_pruned: usize,
    /// Scan duration in milliseconds.
    pub elapsed_ms: f64,
}

/// Per-stage timing breakdown of one search, in milliseconds. The
/// stage sum is always at most `total_ms` (stages are measured
/// disjointly inside the total).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceDto {
    /// Scatter planning (query-class extraction, epoch snapshot).
    pub planner_ms: f64,
    /// Wall time of the whole scatter.
    pub scatter_ms: f64,
    /// K-way merge of per-shard rankings.
    pub gather_ms: f64,
    /// End-to-end search duration.
    pub total_ms: f64,
    /// Whether planner v2 ordered this scatter by per-shard
    /// selectivity (sequencing the most selective shard first).
    pub ordered: bool,
    /// One entry per shard, in shard-index order (each entry's
    /// `order` field records its position in the plan).
    pub shards: Vec<ShardTraceDto>,
}

impl TraceDto {
    /// Converts a database [`QueryTrace`] to the wire form.
    #[must_use]
    pub fn from_trace(trace: &QueryTrace) -> TraceDto {
        TraceDto {
            planner_ms: ns_to_ms(trace.planner_ns),
            scatter_ms: ns_to_ms(trace.scatter_ns),
            gather_ms: ns_to_ms(trace.gather_ns),
            total_ms: ns_to_ms(trace.total_ns),
            ordered: trace.ordered,
            shards: trace
                .shards
                .iter()
                .map(|s| ShardTraceDto {
                    shard: s.shard,
                    replica: s.replica,
                    order: s.order,
                    first_wave: s.first_wave,
                    strategy: s.strategy.to_string(),
                    est_candidates: s.est_candidates,
                    skipped: s.skipped,
                    hits: s.hits,
                    scored: s.scored,
                    bound_pruned: s.bound_pruned,
                    elapsed_ms: ns_to_ms(s.elapsed_ns),
                })
                .collect(),
        }
    }
}

pub(crate) fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Body of a traced search response (`"trace": true`): the ordinary
/// hits plus the timing breakdown. Untraced responses keep the exact
/// legacy [`SearchResponse`] shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracedSearchResponse {
    /// Ranked hits, best first — identical to the untraced ranking.
    pub hits: Vec<HitDto>,
    /// The per-stage timing breakdown.
    pub trace: TraceDto,
}

/// One retained slow query, worst-first in the ring dump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowQueryDto {
    /// Query kind: `"scene"`, `"text"`, or `"sketch"`.
    pub kind: String,
    /// End-to-end duration in milliseconds.
    pub total_ms: f64,
    /// Planner stage in milliseconds.
    pub planner_ms: f64,
    /// Scatter stage in milliseconds.
    pub scatter_ms: f64,
    /// Gather stage in milliseconds.
    pub gather_ms: f64,
    /// Hits returned.
    pub hits: usize,
    /// The request's `top_k` (null = unbounded).
    pub top_k: Option<usize>,
    /// Server uptime when the query finished, in seconds.
    pub at_uptime_s: f64,
}

/// Body of `GET /v1/debug/slow_queries`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowQueriesResponse {
    /// Ring capacity (the most entries ever retained).
    pub capacity: usize,
    /// Retained queries, slowest first.
    pub queries: Vec<SlowQueryDto>,
}

/// Body of `POST /v1/admin/checkpoint`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointResponse {
    /// Records captured in the fresh WAL anchor snapshot.
    pub records: usize,
    /// Checkpoint duration in milliseconds.
    pub duration_ms: f64,
}

/// Body of an insert response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InsertResponse {
    /// Assigned record id.
    pub id: usize,
    /// Echo of the image name.
    pub name: String,
    /// Objects stored in the image.
    pub objects: usize,
}

/// Body of admin replica fail/heal responses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaResponse {
    /// The shard the replica belongs to.
    pub shard: usize,
    /// The replica index inside the shard.
    pub replica: usize,
    /// Whether the replica is in rotation after the operation.
    pub healthy: bool,
}

/// Body of `POST /admin/reshard` responses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReshardResponse {
    /// The shard count records migrate from.
    pub from: usize,
    /// The shard count records migrate to.
    pub to: usize,
    /// `true` when a migration was started in the background (202);
    /// `false` when the target equals the current count (200 no-op).
    pub started: bool,
}

/// Body of delete / object-edit responses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AckResponse {
    /// The affected record id.
    pub id: usize,
    /// `true` on success (errors use the error envelope instead).
    pub ok: bool,
}

/// Body of snapshot / restore responses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotResponse {
    /// The file the snapshot was written to / read from.
    pub path: String,
    /// Live records in the snapshot.
    pub records: usize,
}

/// Body of `GET /stats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Live records in the database.
    pub records: usize,
    /// Distinct indexed object classes.
    pub classes: usize,
    /// Total objects across all records.
    pub objects: usize,
    /// Database shards serving this instance (the **target** topology
    /// while an online reshard is migrating).
    pub shards: usize,
    /// Replicas per shard.
    pub replicas: usize,
    /// Live records per shard, in shard order — the hot-shard imbalance
    /// signal.
    pub shard_records: Vec<usize>,
    /// Live records per replica (`replica_records[shard][replica]`); a
    /// failed replica's count goes stale until its rebuild.
    pub replica_records: Vec<Vec<usize>>,
    /// Health bits per replica (`replica_health[shard][replica]`).
    pub replica_health: Vec<Vec<bool>>,
    /// Shards the scatter planner skipped since boot because their
    /// class postings could not contribute a candidate.
    pub planner_skipped: u64,
    /// Whether an online reshard is currently migrating records.
    pub reshard_active: bool,
    /// Last (or current) reshard: the shard count migrated from.
    pub reshard_from: usize,
    /// Last (or current) reshard: the shard count migrated to.
    pub reshard_to: usize,
    /// Last (or current) reshard: global ids swept so far.
    pub reshard_migrated_ids: usize,
    /// Last (or current) reshard: global ids to sweep in total.
    pub reshard_total_ids: usize,
    /// Last (or current) reshard: records physically moved.
    pub reshard_moved_records: usize,
    /// Requests fully served (any status) since boot.
    pub requests: u64,
    /// Searches served since boot.
    pub searches: u64,
    /// Images inserted since boot.
    pub inserts: u64,
    /// Image removals + object edits since boot.
    pub edits: u64,
    /// Requests answered with an error status since boot.
    pub errors: u64,
    /// Connections shed with 503 since boot.
    pub shed: u64,
    /// Worker threads serving connections.
    pub threads: usize,
    /// Seconds since boot.
    pub uptime_s: f64,
}

/// Body of `GET /v1/stats`: the same facts as the legacy flat
/// [`StatsResponse`], organised into nested sections plus the
/// replication/oplog state the flat shape predates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsV1Response {
    /// Live records in the database.
    pub records: usize,
    /// Distinct indexed object classes.
    pub classes: usize,
    /// Total objects across all records.
    pub objects: usize,
    /// Shard/replica layout.
    pub topology: TopologySection,
    /// Replication mode, per-replica positions, and catch-up counters.
    pub replication: ReplicationSection,
    /// Scatter-planner counters.
    pub planner: PlannerSection,
    /// Online-reshard progress.
    pub reshard: ReshardSection,
    /// Per-shard operation-log state (and WAL counters when enabled).
    pub oplog: OplogSection,
    /// HTTP service counters.
    pub service: ServiceSection,
    /// Rolling request windows (10s / 1m / 5m).
    pub windows: WindowsSection,
}

/// `/v1/stats` topology section.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologySection {
    /// Database shards (the **target** topology mid-reshard).
    pub shards: usize,
    /// Replicas per shard.
    pub replicas: usize,
    /// Live records per shard, in shard order.
    pub shard_records: Vec<usize>,
    /// Live records per replica (`[shard][replica]`).
    pub replica_records: Vec<Vec<usize>>,
    /// Health bits per replica (`[shard][replica]`).
    pub replica_health: Vec<Vec<bool>>,
}

/// `/v1/stats` replication section.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationSection {
    /// Acknowledgement mode: `"sync"`, `"quorum"`, or `"async"`.
    pub mode: String,
    /// The read-routing lag bound (async mode only).
    pub max_lag: Option<u64>,
    /// Per-shard log head and per-replica positions.
    pub shards: Vec<ShardReplicationDto>,
    /// Replica heals served by incremental log replay.
    pub catchup_replays: u64,
    /// Replica heals that fell back to a full clone.
    pub catchup_clones: u64,
    /// Lagging-follower drains performed by writers to free log space.
    pub writer_drains: u64,
    /// Bounded-lag reads that found no in-sync follower and silently
    /// fell back to the leader. A sustained rise under async
    /// replication means followers cannot keep up with the configured
    /// lag bound.
    pub fallback_reads: u64,
}

/// One shard's replication positions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardReplicationDto {
    /// Highest sequence number logged on this shard.
    pub head_seq: u64,
    /// Per-replica positions, in replica order.
    pub replicas: Vec<ReplicaLagDto>,
}

/// One replica's replication position.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaLagDto {
    /// Last op sequence this replica applied.
    pub last_applied_seq: u64,
    /// Ops behind the shard head.
    pub lag: u64,
    /// Whether the replica is in rotation.
    pub healthy: bool,
}

/// `/v1/stats` planner section.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannerSection {
    /// The scatter planner in effect: `"v2"` or `"naive"`.
    pub mode: String,
    /// Shards the scatter planner skipped since boot.
    pub skipped: u64,
    /// Multi-shard searches run with a selectivity-ordered scatter.
    pub ordered_scatters: u64,
    /// Per-shard scans where the planner chose the dense-scan
    /// candidate strategy over the posting walk.
    pub dense_scans: u64,
}

/// `/v1/stats` reshard section.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReshardSection {
    /// Whether a migration is currently sweeping.
    pub active: bool,
    /// Shard count migrated from.
    pub from: usize,
    /// Shard count migrated to.
    pub to: usize,
    /// Global ids swept so far.
    pub migrated_ids: usize,
    /// Global ids to sweep in total.
    pub total_ids: usize,
    /// Records physically moved.
    pub moved_records: usize,
}

/// `/v1/stats` oplog section.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OplogSection {
    /// Ring capacity per shard, in ops.
    pub window: usize,
    /// Highest sequence number issued.
    pub last_seq: u64,
    /// Ring entries currently held across all shards.
    pub entries: usize,
    /// WAL durability counters; `null` when the WAL is off.
    pub wal: Option<WalSection>,
}

/// `/v1/stats` WAL counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalSection {
    /// Records appended since boot.
    pub appended: u64,
    /// Fsync batches issued.
    pub fsyncs: u64,
    /// Checkpoint truncations performed.
    pub truncations: u64,
    /// Torn trailing records healed at recovery.
    pub healed_tails: u64,
    /// Ops replayed from the log at the last boot.
    pub recovered: u64,
}

/// `/v1/stats` service section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSection {
    /// Requests fully served (any status) since boot.
    pub requests: u64,
    /// Searches served since boot.
    pub searches: u64,
    /// Images inserted since boot.
    pub inserts: u64,
    /// Image removals + object edits since boot.
    pub edits: u64,
    /// Requests answered with an error status since boot.
    pub errors: u64,
    /// Connections shed with 503 since boot.
    pub shed: u64,
    /// Worker threads serving connections.
    pub threads: usize,
    /// Seconds since boot.
    pub uptime_s: f64,
}

/// `/v1/stats` rolling-window section: the same request stream as the
/// lifetime counters, but aggregated over the last 10 seconds, 1
/// minute, and 5 minutes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowsSection {
    /// The last 10 seconds.
    pub last_10s: WindowStatsDto,
    /// The last minute.
    pub last_1m: WindowStatsDto,
    /// The last 5 minutes.
    pub last_5m: WindowStatsDto,
}

/// One rolling window's aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowStatsDto {
    /// Requests served in the window.
    pub requests: u64,
    /// Mean requests per second over the window.
    pub rate_rps: f64,
    /// Responses with status ≥ 500 in the window.
    pub errors_5xx: u64,
    /// `errors_5xx / requests` (0 when idle).
    pub error_ratio: f64,
    /// Median request latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile request latency in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile request latency in milliseconds.
    pub p99_ms: f64,
    /// Slowest request in the window, in milliseconds.
    pub max_ms: f64,
}

impl WindowStatsDto {
    /// Converts one window summary into wire shape (nanoseconds →
    /// milliseconds).
    pub(crate) fn from_summary(s: &crate::health::WindowSummary) -> WindowStatsDto {
        WindowStatsDto {
            requests: s.requests,
            rate_rps: s.rate_rps,
            errors_5xx: s.errors_5xx,
            error_ratio: s.error_ratio,
            p50_ms: s.latency.quantile(0.50) as f64 / 1e6,
            p95_ms: s.latency.quantile(0.95) as f64 / 1e6,
            p99_ms: s.latency.quantile(0.99) as f64 / 1e6,
            max_ms: s.latency.max_ns as f64 / 1e6,
        }
    }
}

/// Body of `GET /v1/health`: the worst-verdict rollup plus every
/// subsystem's verdict and reason.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthResponse {
    /// `"ok"`, `"degraded"`, or `"critical"` — the worst subsystem.
    pub status: String,
    /// Per-subsystem breakdown, in stable order.
    pub subsystems: Vec<SubsystemDto>,
}

/// One subsystem's verdict in `GET /v1/health`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsystemDto {
    /// Stable subsystem name.
    pub name: String,
    /// `"ok"`, `"degraded"`, or `"critical"`.
    pub verdict: String,
    /// Machine-readable reason.
    pub reason: String,
}

impl HealthResponse {
    /// Converts the health engine's report into wire shape.
    pub(crate) fn from_report(report: &crate::health::HealthReport) -> HealthResponse {
        HealthResponse {
            status: report.status.as_str().into(),
            subsystems: report
                .subsystems
                .iter()
                .map(|s| SubsystemDto {
                    name: s.name.into(),
                    verdict: s.verdict.as_str().into(),
                    reason: s.reason.clone(),
                })
                .collect(),
        }
    }
}

/// Builds the `GET /v1/debug/events` body as a [`Value`] tree: the
/// event payloads are heterogeneous per type, which the shim's derived
/// serialiser cannot express as one struct.
pub(crate) fn events_value(events: &[be2d_db::Event], last_seq: u64, capacity: usize) -> Value {
    use be2d_db::EventKind;
    let items: Vec<Value> = events
        .iter()
        .map(|e| {
            let payload = match &e.kind {
                EventKind::ReplicaFailed { shard, replica } => vec![
                    ("shard".to_owned(), Value::Int(*shard as i128)),
                    ("replica".to_owned(), Value::Int(*replica as i128)),
                ],
                EventKind::ReplicaHealed {
                    shard,
                    replica,
                    method,
                } => vec![
                    ("shard".to_owned(), Value::Int(*shard as i128)),
                    ("replica".to_owned(), Value::Int(*replica as i128)),
                    ("method".to_owned(), Value::Str((*method).to_owned())),
                ],
                EventKind::ReshardStarted { from, to } => vec![
                    ("from".to_owned(), Value::Int(*from as i128)),
                    ("to".to_owned(), Value::Int(*to as i128)),
                ],
                EventKind::ReshardFinished {
                    from,
                    to,
                    moved_records,
                    batches,
                } => vec![
                    ("from".to_owned(), Value::Int(*from as i128)),
                    ("to".to_owned(), Value::Int(*to as i128)),
                    (
                        "moved_records".to_owned(),
                        Value::Int(*moved_records as i128),
                    ),
                    ("batches".to_owned(), Value::Int(i128::from(*batches))),
                ],
                EventKind::WalCheckpoint { records } => {
                    vec![("records".to_owned(), Value::Int(*records as i128))]
                }
                EventKind::SloBurn { signal, detail } => vec![
                    ("signal".to_owned(), Value::Str(signal.clone())),
                    ("detail".to_owned(), Value::Str(detail.clone())),
                ],
                EventKind::AdvisorRecommendation {
                    action,
                    target,
                    reason,
                } => vec![
                    ("action".to_owned(), Value::Str(action.clone())),
                    ("target".to_owned(), Value::Str(target.clone())),
                    ("reason".to_owned(), Value::Str(reason.clone())),
                ],
            };
            Value::Map(vec![
                ("seq".to_owned(), Value::Int(i128::from(e.seq))),
                ("unix_ms".to_owned(), Value::Int(i128::from(e.unix_ms))),
                ("type".to_owned(), Value::Str(e.kind.name().to_owned())),
                ("payload".to_owned(), Value::Map(payload)),
            ])
        })
        .collect();
    Value::Map(vec![
        ("last_seq".to_owned(), Value::Int(i128::from(last_seq))),
        ("capacity".to_owned(), Value::Int(capacity as i128)),
        ("events".to_owned(), Value::Seq(items)),
    ])
}

/// Serialises any response DTO as a JSON [`Response`].
pub(crate) fn json_response<T: Serialize>(status: u16, dto: &T) -> Response {
    match serde_json::to_string(dto) {
        Ok(body) => Response::json(status, body),
        Err(e) => Response::error(500, &format!("response serialisation failed: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(text: &str) -> Value {
        serde_json::from_str(text).expect("valid test JSON")
    }

    #[test]
    fn scene_parsing_roundtrip() {
        let scene = scene_from_value(&val(r#"{"width":100,"height":80,"objects":[
                {"class":"A","mbr":[10,30,10,30]},
                {"class":"B","mbr":[40,90,5,60]}]}"#))
        .unwrap();
        assert_eq!(scene.width(), 100);
        assert_eq!(scene.len(), 2);
        assert_eq!(scene.objects()[1].class().name(), "B");

        // objects is optional
        let empty = scene_from_value(&val(r#"{"width":10,"height":10}"#)).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn scene_parsing_rejects_malformed() {
        for text in [
            r#"{"height":10}"#,
            r#"{"width":0,"height":10}"#,
            r#"{"width":10,"height":10,"objects":[{"class":"A","mbr":[1,2,3]}]}"#,
            r#"{"width":10,"height":10,"objects":[{"class":"A","mbr":[5,1,1,5]}]}"#,
            r#"{"width":10,"height":10,"objects":[{"class":"E","mbr":[1,2,1,2]}]}"#,
            r#"{"width":10,"height":10,"objects":[{"mbr":[1,2,1,2]}]}"#,
            r#"[1,2,3]"#,
        ] {
            assert!(scene_from_value(&val(text)).is_err(), "{text}");
        }
    }

    #[test]
    fn insert_request_scene_or_symbolic() {
        let req = InsertRequest::from_value(&val(
            r#"{"name":"x","scene":{"width":10,"height":10,"objects":[{"class":"A","mbr":[1,4,1,4]}]}}"#,
        ))
        .unwrap();
        assert_eq!(req.name, "x");
        assert!(matches!(req.image, InsertBody::Scene(_)));

        // symbolic roundtrip through the real serialised form
        let scene = scene_from_value(&val(
            r#"{"width":10,"height":10,"objects":[{"class":"A","mbr":[1,4,1,4]}]}"#,
        ))
        .unwrap();
        let sym = SymbolicImage::from_scene(&scene);
        let body = format!(
            r#"{{"name":"y","symbolic":{}}}"#,
            serde_json::to_string(&sym).unwrap()
        );
        let req = InsertRequest::from_value(&val(&body)).unwrap();
        match req.image {
            InsertBody::Symbolic(parsed) => assert_eq!(*parsed, sym),
            InsertBody::Scene(_) => panic!("expected symbolic"),
        }

        assert!(InsertRequest::from_value(&val(r#"{"name":"x"}"#)).is_err());
        assert!(InsertRequest::from_value(&val(r#"{"scene":{"width":1,"height":1}}"#)).is_err());
    }

    #[test]
    fn options_defaults_and_overrides() {
        let defaults = QueryOptions::serving();
        let untouched = options_from_value(None, &defaults).unwrap();
        assert_eq!(untouched, defaults);

        let opts = options_from_value(
            Some(&val(
                r#"{"top_k":3,"min_score":0.5,"prefilter":"all-classes",
                    "candidates":"scan","parallel":"off","transforms":"paper-set"}"#,
            )),
            &defaults,
        )
        .unwrap();
        assert_eq!(opts.top_k, Some(3));
        assert!((opts.min_score - 0.5).abs() < 1e-12);
        assert_eq!(opts.prefilter, PrefilterMode::AllClasses);
        assert_eq!(opts.candidates, CandidateSource::Scan);
        assert_eq!(opts.parallel, Parallelism::Off);
        assert_eq!(opts.transforms.len(), 6);

        // null top_k = unlimited; explicit transform list; bool parallel
        let opts = options_from_value(
            Some(&val(
                r#"{"top_k":null,"transforms":["identity","rotate-90"],"parallel":true}"#,
            )),
            &defaults,
        )
        .unwrap();
        assert_eq!(opts.top_k, None);
        assert_eq!(
            opts.transforms,
            vec![Transform::Identity, Transform::Rotate90]
        );
        assert_eq!(opts.parallel, Parallelism::On);
    }

    #[test]
    fn options_reject_unknown() {
        let defaults = QueryOptions::default();
        for text in [
            r#"{"warp":1}"#,
            r#"{"prefilter":"sometimes"}"#,
            r#"{"candidates":"psychic"}"#,
            r#"{"parallel":"maybe"}"#,
            r#"{"transforms":"bogus"}"#,
            r#"{"transforms":["rotate-45"]}"#,
            r#"{"top_k":-2}"#,
        ] {
            assert!(
                options_from_value(Some(&val(text)), &defaults).is_err(),
                "{text}"
            );
        }
    }

    #[test]
    fn search_request_forms() {
        let defaults = QueryOptions::default();
        let req = SearchRequest::from_value(
            &val(r#"{"scene":{"width":10,"height":10},"options":{"top_k":1}}"#),
            &defaults,
        )
        .unwrap();
        assert!(matches!(req.query, SearchQuery::Scene(_)));
        assert_eq!(req.options.top_k, Some(1));

        let req = SearchRequest::from_value(
            &val(r#"{"text":{"u":"E A_b E A_e E","v":"E A_b E A_e E"}}"#),
            &defaults,
        )
        .unwrap();
        assert!(matches!(req.query, SearchQuery::Text { .. }));

        assert!(SearchRequest::from_value(&val(r#"{}"#), &defaults).is_err());
        assert!(SearchRequest::from_value(&val(r#"{"text":{"u":"E"}}"#), &defaults).is_err());
    }

    #[test]
    fn sketch_and_path_requests() {
        let defaults = QueryOptions::default();
        let req =
            SketchRequest::from_value(&val(r#"{"sketch":"A left-of B"}"#), &defaults).unwrap();
        assert_eq!(req.sketch, "A left-of B");
        assert!(SketchRequest::from_value(&val(r#"{}"#), &defaults).is_err());

        assert_eq!(PathRequest::from_value(&val(r#"{}"#)).unwrap().file, None);
        assert_eq!(
            PathRequest::from_value(&val(r#"{"path":"x.json"}"#))
                .unwrap()
                .file,
            Some("x.json".to_owned())
        );
        assert!(PathRequest::from_value(&val(r#"{"path":7}"#)).is_err());
        // directory escapes are rejected outright
        for escape in ["/tmp/x.json", "../x.json", "a/b.json", "..", "", r"a\b"] {
            let body = format!(r#"{{"path":{escape:?}}}"#);
            assert!(PathRequest::from_value(&val(&body)).is_err(), "{escape}");
        }
    }

    #[test]
    fn body_parsing_tolerates_empty() {
        assert_eq!(parse_body(b"").unwrap(), Value::Map(Vec::new()));
        assert_eq!(parse_body(b"  \n").unwrap(), Value::Map(Vec::new()));
        assert!(parse_body(b"{oops").is_err());
        assert!(parse_body(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn transform_names_roundtrip() {
        for t in Transform::ALL {
            assert_eq!(parse_transform(&t.to_string()), Some(t));
        }
        assert_eq!(parse_transform("rotate-45"), None);
    }

    #[test]
    fn replica_request_parses_and_rejects() {
        let req = ReplicaRequest::from_value(&val(r#"{"shard":2,"replica":1}"#)).unwrap();
        assert_eq!(
            req,
            ReplicaRequest {
                shard: 2,
                replica: 1
            }
        );
        for text in [
            r#"{}"#,
            r#"{"shard":0}"#,
            r#"{"replica":0}"#,
            r#"{"shard":-1,"replica":0}"#,
            r#"{"shard":"zero","replica":0}"#,
        ] {
            assert!(ReplicaRequest::from_value(&val(text)).is_err(), "{text}");
        }
    }

    #[test]
    fn reshard_request_parses_and_rejects() {
        let req = ReshardRequest::from_value(&val(r#"{"shards":8}"#)).unwrap();
        assert_eq!(
            req,
            ReshardRequest {
                shards: 8,
                batch: None
            }
        );
        let req = ReshardRequest::from_value(&val(r#"{"shards":4,"batch":64}"#)).unwrap();
        assert_eq!(req.batch, Some(64));
        for text in [
            r#"{}"#,
            r#"{"shards":0}"#,
            r#"{"shards":-2}"#,
            r#"{"shards":"four"}"#,
            r#"{"shards":4,"batch":0}"#,
            r#"{"shards":4,"batch":-1}"#,
        ] {
            assert!(ReshardRequest::from_value(&val(text)).is_err(), "{text}");
        }
    }

    #[test]
    fn db_error_status_mapping() {
        assert_eq!(
            ApiError::from_db(&DbError::UnknownRecord { id: 3 }).status,
            404
        );
        assert_eq!(
            ApiError::from_db(&DbError::Replica { reason: "x".into() }).status,
            409
        );
        assert_eq!(
            ApiError::from_db(&DbError::Sketch { reason: "x".into() }).status,
            422
        );
        assert_eq!(
            ApiError::from_db(&DbError::Persist { reason: "x".into() }).status,
            500
        );
    }
}
