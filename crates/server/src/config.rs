//! Server configuration.

use crate::advisor::AdvisorMode;
use be2d_db::{PlannerMode, ReplicaConfig, ReplicationMode, WalConfig};
use std::path::PathBuf;
use std::time::Duration;

/// Tunables of one [`Server`](crate::Server) instance.
///
/// The defaults are sized for an interactive service on a developer
/// machine; the CLI (`be2d-server --help`) exposes every field.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (printed at boot).
    pub addr: String,
    /// Worker threads; 0 means `available_parallelism` (clamped to
    /// [2, 32]).
    pub threads: usize,
    /// Database shards. 1 (the default) behaves exactly like the
    /// unsharded deployment; more shards scatter-gather searches and
    /// confine each write's lock to the owning shard. 0 is clamped
    /// to 1.
    pub shards: usize,
    /// Replicas per shard. 1 (the default) is the unreplicated
    /// deployment; more replicas spread reads across copies, survive
    /// replica failure (`POST /admin/replicas/fail`), and rebuild from
    /// a healthy peer (`POST /admin/replicas/heal`). 0 is clamped to 1.
    pub replicas: usize,
    /// Global ids swept per online-reshard batch (`POST /admin/reshard`
    /// when the request names no batch size). Smaller batches mean
    /// shorter per-batch write pauses; larger ones finish the migration
    /// in fewer stop-the-world steps.
    pub reshard_batch: usize,
    /// How writes acknowledge across replicas: every healthy replica
    /// (`Sync`, the default), a majority (`Quorum`), or the leader
    /// alone with followers draining in the background (`Async`).
    pub replication: ReplicationMode,
    /// Per-shard operation-log window in ops. A healed replica whose
    /// gap fits the window catches up by replaying just the missed
    /// ops; a larger gap falls back to a full clone.
    pub oplog_window: usize,
    /// Scatter planner: `V2` (the default) orders multi-shard scatters
    /// by per-shard selectivity, picks a candidate strategy per shard,
    /// and routes reads to the least-loaded replica; `Naive` keeps the
    /// index-order scatter for A/B comparison.
    pub planner: PlannerMode,
    /// Write-ahead-log directory; `Some` turns on crash-durable
    /// logging (every mutation appended, recovery = anchor snapshot +
    /// replay on boot).
    pub wal_dir: Option<PathBuf>,
    /// Fsync after this many WAL records (1 = every acknowledged write
    /// is on disk before the call returns).
    pub wal_fsync_every: u64,
    /// Connections allowed to wait for a free worker before new ones
    /// are shed with `503 Service Unavailable`.
    pub queue_capacity: usize,
    /// Slowest queries retained for `GET /v1/debug/slow_queries`
    /// (0 disables the slow-query ring).
    pub slow_query_capacity: usize,
    /// Socket read timeout: bounds both the wait for the next
    /// keep-alive request and each read while parsing one request.
    pub read_timeout: Duration,
    /// Whole-request read budget, counted from a request's first byte —
    /// the slow-loris bound a per-read timeout cannot provide.
    pub request_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// Requests served on one connection before it is closed, freeing
    /// the worker for queued connections.
    pub keep_alive_requests: usize,
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of request body.
    pub max_body_bytes: usize,
    /// Directory all `POST /snapshot` / `POST /restore` files live in.
    /// Request bodies may choose a *file name* inside it, never a path
    /// outside it — network peers must not get arbitrary-path
    /// filesystem access.
    pub snapshot_dir: PathBuf,
    /// Default file name (inside [`snapshot_dir`](Self::snapshot_dir))
    /// when a snapshot/restore body names none.
    pub snapshot_file: String,
    /// The autopilot advisor: `Off` (default) runs no advisor loop;
    /// `DryRun` evaluates windowed signals each
    /// [`advisor_tick`](Self::advisor_tick) and journals
    /// `advisor_recommendation` events without ever issuing an admin
    /// call.
    pub advisor: AdvisorMode,
    /// Interval between advisor evaluations.
    pub advisor_tick: Duration,
    /// Silence per fired advisor signal: an oscillating condition
    /// produces at most one recommendation per cooldown.
    pub advisor_cooldown: Duration,
    /// SLO latency target: the rolling 1-minute p99 above this counts
    /// as a burn in `GET /v1/health`.
    pub slo_p99: Duration,
    /// SLO availability target in [0, 1]; the 5xx error budget is
    /// `1 - slo_availability` of windowed requests.
    pub slo_availability: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            shards: 1,
            replicas: 1,
            reshard_batch: 256,
            replication: ReplicationMode::Sync,
            oplog_window: 1024,
            planner: PlannerMode::default(),
            wal_dir: None,
            wal_fsync_every: 64,
            queue_capacity: 64,
            slow_query_capacity: 32,
            read_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(15),
            write_timeout: Duration::from_secs(5),
            keep_alive_requests: 256,
            max_head_bytes: 16 * 1024,
            max_body_bytes: 8 * 1024 * 1024,
            snapshot_dir: PathBuf::from("."),
            snapshot_file: "be2d-snapshot.json".into(),
            advisor: AdvisorMode::Off,
            advisor_tick: Duration::from_secs(1),
            advisor_cooldown: Duration::from_secs(30),
            slo_p99: Duration::from_millis(250),
            slo_availability: 0.99,
        }
    }
}

impl ServerConfig {
    /// The database topology this server config describes: shards,
    /// replicas, replication mode, op-log window, and (when
    /// [`wal_dir`](Self::wal_dir) is set) the write-ahead log.
    #[must_use]
    pub fn replica_config(&self) -> ReplicaConfig {
        ReplicaConfig {
            shards: self.shards,
            replicas: self.replicas,
            mode: self.replication,
            oplog_window: self.oplog_window,
            planner: self.planner,
            wal: self.wal_dir.clone().map(|dir| WalConfig {
                dir,
                fsync_every: self.wal_fsync_every,
            }),
        }
    }

    /// The worker-thread count after resolving `threads == 0` to the
    /// host parallelism.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map_or(2, std::num::NonZeroUsize::get)
                .clamp(2, 32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.effective_threads() >= 2);
        assert!(c.queue_capacity > 0);
        assert!(c.reshard_batch > 0);
        assert!(c.max_head_bytes < c.max_body_bytes);
        assert_eq!(c.advisor, AdvisorMode::Off);
        assert!(c.slo_availability > 0.9 && c.slo_availability < 1.0);
        assert!(c.advisor_cooldown >= c.advisor_tick);
    }

    #[test]
    fn explicit_threads_win() {
        let c = ServerConfig {
            threads: 7,
            ..ServerConfig::default()
        };
        assert_eq!(c.effective_threads(), 7);
    }
}
