//! Shared harness utilities for the experiment binaries and Criterion
//! benches: canonical workload configurations, adversarial scene
//! constructions, and plain-text table printing.
//!
//! Every experiment in `DESIGN.md`'s index (E1–E10) has one binary in
//! `src/bin/`; `run_all` executes them in sequence to regenerate the
//! numbers recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use be2d_geometry::{ObjectClass, Rect, Scene};
use be2d_workload::{Placement, SceneConfig};
use std::time::Duration;

/// The canonical random-scene configuration used across experiments
/// (uniform placement, 6-class alphabet), parameterised by object count.
#[must_use]
pub fn standard_config(objects: usize) -> SceneConfig {
    SceneConfig {
        width: 1024,
        height: 1024,
        objects,
        classes: 6,
        min_size: 8,
        max_size: 128,
        placement: Placement::Uniform,
    }
}

/// Best-case scene for BE-string storage (§3.1): `n` identical
/// whole-frame objects → `2n + 1` symbols per axis.
#[must_use]
pub fn best_case_scene(n: usize) -> Scene {
    let mut scene = Scene::new(1000, 1000).expect("frame");
    for _ in 0..n {
        scene
            .add(
                ObjectClass::new("A"),
                Rect::new(0, 1000, 0, 1000).expect("rect"),
            )
            .expect("fits");
    }
    scene
}

/// Worst-case scene for BE-string storage (§3.1): all boundaries
/// distinct with margins on all sides → `4n + 1` symbols per axis.
///
/// # Panics
///
/// Panics when `n` does not fit the fixed frame (n ≤ 12000).
#[must_use]
pub fn worst_case_scene(n: usize) -> Scene {
    let frame = (4 * n + 10) as i64;
    let mut scene = Scene::new(frame, frame).expect("frame");
    for i in 0..n as i64 {
        scene
            .add(
                ObjectClass::new("A"),
                Rect::new(4 * i + 1, 4 * i + 3, 4 * i + 1, 4 * i + 3).expect("rect"),
            )
            .expect("fits");
    }
    scene
}

/// Adversarial pile for the cutting baselines: `n` pairwise-overlapping
/// congruent squares → O(n²) G-string segments.
#[must_use]
pub fn overlap_pile_scene(n: usize) -> Scene {
    let side = (n + 1000) as i64;
    let mut scene = Scene::new(2 * side, 2 * side).expect("frame");
    for i in 0..n as i64 {
        scene
            .add(
                ObjectClass::new("X"),
                Rect::new(i, 1000 + i, i, 1000 + i).expect("rect"),
            )
            .expect("fits");
    }
    scene
}

/// Formats a duration with 3 significant figures and a sensible unit.
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.2}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

/// Prints a row of right-aligned cells under the given column widths.
#[must_use]
pub fn table_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Measures the median wall-clock time of `f` over `reps` runs.
pub fn median_time<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    let mut samples: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use be2d_core::convert_scene;

    #[test]
    fn best_case_hits_lower_bound() {
        let s = convert_scene(&best_case_scene(7));
        assert_eq!(s.x().len(), 15);
        assert_eq!(s.y().len(), 15);
    }

    #[test]
    fn worst_case_hits_upper_bound() {
        let s = convert_scene(&worst_case_scene(9));
        assert_eq!(s.x().len(), 37);
        assert_eq!(s.y().len(), 37);
    }

    #[test]
    fn overlap_pile_is_quadratic_for_gstring() {
        use be2d_strings2d::GString;
        let scene = overlap_pile_scene(12);
        assert!(GString::from_scene(&scene).segment_count() >= 12 * 12);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("us"));
    }

    #[test]
    fn table_row_aligns() {
        let row = table_row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(row, "  a    bb");
    }

    #[test]
    fn median_time_runs() {
        let d = median_time(3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(d < Duration::from_secs(1));
    }
}
