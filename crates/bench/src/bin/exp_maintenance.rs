//! E6 — §3.2 incremental maintenance cost: inserting one object into a
//! stored image via binary search vs re-running the full conversion.

use be2d_bench::{fmt_duration, median_time, standard_config, table_row};
use be2d_core::SymbolicImage;
use be2d_geometry::{ObjectClass, Rect};
use be2d_workload::scene_from_seed;
use std::hint::black_box;

fn main() {
    println!("=== E6: incremental insert vs full reconversion ===\n");
    let widths = [6, 14, 14, 10];
    let header = ["n", "incremental", "reconvert", "speedup"];
    println!("{}", table_row(&header.map(String::from), &widths));

    for n in [16usize, 64, 256, 1024, 4096] {
        let scene = scene_from_seed(&standard_config(n), n as u64);
        let base = SymbolicImage::from_scene(&scene);
        let class = ObjectClass::new("Znew");
        let mbr = Rect::new(501, 777, 123, 456).expect("rect");

        let incremental = median_time(20, || {
            let mut img = base.clone();
            img.add_object(&class, mbr).expect("fits");
            black_box(&img);
        });

        let reconvert = median_time(20, || {
            let mut bigger = scene.clone();
            bigger.add(class.clone(), mbr).expect("fits");
            black_box(SymbolicImage::from_scene(&bigger));
        });

        let speedup = reconvert.as_nanos() as f64 / incremental.as_nanos().max(1) as f64;
        let row = [
            n.to_string(),
            fmt_duration(incremental),
            fmt_duration(reconvert),
            format!("{speedup:.1}x"),
        ];
        println!("{}", table_row(&row, &widths));
    }
    println!("\nBoth are linear-ish (the splice is O(n)), but the incremental path");
    println!("avoids the O(n log n) re-sort and the full object scan, as §3.2 claims.");
    println!("(The measured incremental cost includes cloning the stored image; in a");
    println!("database the edit happens in place and is cheaper still.)");
}
