//! E16 — planner v2 economics: what the selectivity-ordered scatter,
//! per-shard candidate strategy, and least-outstanding replica picker
//! buy under hot-shard skew.
//!
//! The corpus is deliberately skewed: ids route to shards round-robin
//! (`id % shards`), and every record on the even ("hot") shards
//! carries the query classes `{C, R}` buried in six filler objects —
//! under the default Dice normalisation the clutter drags both the
//! admissible bound and the exact score far below the strong band
//! while making each exact evaluation expensive. The odd shards carry
//! `R` only on sparse near-copies of the canonical query layout
//! (shard 1 sparsest, just enough to fill top-k). An `AllClasses`
//! query over `{C, R}` therefore sees several expensive
//! low-selectivity shards full of weak candidates and cheap shards
//! full of strong ones. An unordered scatter burns a frontier batch of
//! exact scores on every hot shard before the racing threshold lands;
//! the v2 planner sequences the cheapest k-filling shard first, so the
//! threshold precedes every hot shard and deletes that work entirely.
//!
//! Both planner modes run the same query battery on identical corpora:
//!
//! 1. **Equivalence.** Every v2 ranking is asserted bit-identical
//!    (`f64::to_bits`) to its naive twin before being counted.
//! 2. **Latency.** Per-query p50/p95 for both modes, sequential and
//!    under concurrent reader pressure (where the least-outstanding
//!    picker spreads replicas better than a blind cursor).
//! 3. **Work.** Exactly-scored candidates per mode: the threshold the
//!    ordered scatter carries into the hot shard deletes exact work.
//!
//! Writes `BENCH_planner.json`:
//!
//! ```json
//! {"benchmark":"planner","images":3000,"shards":6,
//!  "naive":{"p50_us":...,"p95_us":...,"concurrent_p95_us":...,"scored":...},
//!  "v2":{...,"ordered_scatters":...,"dense_scans":...},
//!  "speedup_p50":...,"speedup_p95":...,"concurrent_speedup_p95":...}
//! ```

use be2d_db::{
    CandidateSource, PlannerMode, PrefilterMode, QueryOptions, ReplicaConfig,
    ReplicatedImageDatabase, ReplicationMode,
};
use be2d_geometry::{Scene, SceneBuilder};
use be2d_workload::metrics::percentile;
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct Config {
    /// Corpus size (ids route round-robin, so shard 0 owns 1/shards).
    images: usize,
    /// Queries in the battery.
    queries: usize,
    /// Shards (shard 0 is the engineered hot shard).
    shards: usize,
    /// Replicas per shard (the picker only matters beyond 1).
    replicas: usize,
    /// Concurrent readers in the contended phase.
    readers: usize,
    /// Wall-clock per concurrent phase.
    window: Duration,
    /// Result size per query (the threshold seed).
    top_k: usize,
    /// Stage-2 frontier batch size.
    frontier: usize,
    out: String,
}

impl Config {
    fn full() -> Config {
        Config {
            images: 3000,
            queries: 24,
            shards: 6,
            replicas: 2,
            readers: 4,
            window: Duration::from_millis(800),
            top_k: 10,
            frontier: 64,
            out: "BENCH_planner.json".into(),
        }
    }

    /// CI-sized preset: same shape, a fraction of the wall clock.
    fn small() -> Config {
        Config {
            images: 900,
            queries: 12,
            window: Duration::from_millis(300),
            ..Config::full()
        }
    }
}

fn usage() -> &'static str {
    "exp_planner — price planner v2: ordered scatter + per-shard strategy + replica picker under hot-shard skew\n\
     \n\
     options:\n\
       --preset small|full  workload size (default full; CI uses small)\n\
       --images N           corpus size\n\
       --queries N          queries in the battery\n\
       --shards N           shards (shard 0 is the hot shard)\n\
       --replicas N         replicas per shard\n\
       --readers N          concurrent readers in the contended phase\n\
       --top-k N            result size per query\n\
       --frontier N         stage-2 frontier batch size\n\
       --out PATH           JSON report path (default BENCH_planner.json)\n\
       --help               this text\n"
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut overrides: Vec<(String, String)> = Vec::new();
    let mut config = Config::full();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        if flag == "--preset" {
            config = match value.as_str() {
                "small" => Config::small(),
                "full" => Config::full(),
                other => return Err(format!("unknown preset {other:?} (small | full)")),
            };
        } else {
            overrides.push((flag.clone(), value.clone()));
        }
    }
    for (flag, value) in overrides {
        let parsed = value.parse::<usize>();
        match flag.as_str() {
            "--images" => config.images = parsed.map_err(|_| "--images must be a number")?,
            "--queries" => config.queries = parsed.map_err(|_| "--queries must be a number")?,
            "--shards" => config.shards = parsed.map_err(|_| "--shards must be a number")?,
            "--replicas" => config.replicas = parsed.map_err(|_| "--replicas must be a number")?,
            "--readers" => config.readers = parsed.map_err(|_| "--readers must be a number")?,
            "--top-k" => config.top_k = parsed.map_err(|_| "--top-k must be a number")?,
            "--frontier" => config.frontier = parsed.map_err(|_| "--frontier must be a number")?,
            "--out" => config.out = value,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if config.images == 0 || config.queries == 0 || config.shards == 0 || config.replicas == 0 {
        return Err("--images, --queries, --shards and --replicas must be at least 1".into());
    }
    Ok(config)
}

/// Tiny deterministic LCG shared by every scene generator.
fn lcg(seed: u64) -> impl FnMut(i64) -> i64 {
    let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    move |modulus: i64| {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        ((state >> 33) as i64).rem_euclid(modulus)
    }
}

/// The canonical strong layout: three `C` objects and one `R`, each
/// jittered by a few pixels per instance so exact scores spread without
/// leaving the high band.
fn strong_scene(seed: u64) -> Scene {
    let mut next = lcg(seed);
    let mut jitter = [0i64; 16];
    for j in &mut jitter {
        *j = next(12) - 6;
    }
    let j = |k: usize| jitter[k];
    SceneBuilder::new(1024, 1024)
        .object("C", (100 + j(0), 180 + j(1), 100 + j(2), 170 + j(3)))
        .object("C", (300 + j(4), 390 + j(5), 140 + j(6), 210 + j(7)))
        .object("C", (520 + j(8), 610 + j(9), 120 + j(10), 190 + j(11)))
        .object("R", (330 + j(12), 368 + j(13), 150 + j(14), 196 + j(15)))
        .build()
        .expect("strong scene in frame")
}

/// A hot-shard record: it matches the query classes (so it is always a
/// candidate) but six filler objects bury them — under Dice
/// normalisation both the admissible bound and the exact score sit far
/// below the strong band, and every exact evaluation walks a long
/// BE-string.
fn hot_scene(seed: u64) -> Scene {
    let mut next = lcg(seed);
    let mut b = SceneBuilder::new(1024, 1024);
    for class in ["C", "R", "D", "F", "G", "H", "J", "K"] {
        let (x, y) = (next(880), next(880));
        b = b.object(class, (x, x + 40 + next(60), y, y + 30 + next(60)));
    }
    b.build().expect("hot scene in frame")
}

/// A cold-shard background record: common classes, no `R` — never a
/// candidate for the battery, but it keeps the `C` postings dense so
/// selectivity comes from `R` alone.
fn background_scene(seed: u64) -> Scene {
    let mut next = lcg(seed);
    let mut b = SceneBuilder::new(1024, 1024);
    for class in ["C", "D", "G"] {
        let (x, y) = (next(880), next(880));
        b = b.object(class, (x, x + 40 + next(60), y, y + 30 + next(60)));
    }
    b.build().expect("background scene in frame")
}

/// Scene for global id `i`: ids route round-robin (`id % shards`).
/// Even shards are hot — every record an expensive weak candidate, so
/// an unordered scatter burns a frontier batch of exact scores on each
/// before the threshold lands. Odd shards are cold: shard 1 carries a
/// strong near-match of the canonical layout on its first 13 slots
/// only (just enough to fill top-k whatever the corpus size — the
/// cheapest possible threshold seed), the other odd shards on every
/// 7th slot; the rest are background records.
fn skewed_scene(i: usize, shards: usize) -> Scene {
    let shard = i % shards;
    let slot = i / shards;
    let strong = if shard == 1 {
        slot < 13
    } else {
        slot.is_multiple_of(7)
    };
    if shards > 1 && shard.is_multiple_of(2) {
        hot_scene(i as u64)
    } else if strong {
        strong_scene(i as u64)
    } else {
        background_scene(i as u64)
    }
}

/// The battery: jittered instances of the canonical strong layout, so
/// strong records answer with high scores and the hot shard's weak
/// candidates sit below the threshold the sequenced first wave seeds.
fn queries(config: &Config) -> Vec<Scene> {
    (0..config.queries)
        .map(|q| strong_scene(0xbeef ^ (q as u64).wrapping_mul(0x9e37_79b9)))
        .collect()
}

fn build(config: &Config, planner: PlannerMode) -> ReplicatedImageDatabase {
    let db = ReplicatedImageDatabase::with_config(ReplicaConfig {
        shards: config.shards,
        replicas: config.replicas,
        mode: ReplicationMode::Sync,
        oplog_window: 1024,
        planner,
        wal: None,
    })
    .expect("in-memory topology opens");
    for i in 0..config.images {
        db.insert_scene(&format!("img-{i}"), &skewed_scene(i, config.shards))
            .expect("prefill insert");
    }
    db
}

#[derive(Debug, Default)]
struct ModeResult {
    p50_us: f64,
    p95_us: f64,
    concurrent_p95_us: f64,
    scored: u64,
    ordered_scatters: u64,
    dense_scans: u64,
}

/// Sequential battery + contended phase for one planner mode.
fn measure(config: &Config, db: &ReplicatedImageDatabase, queries: &[Scene]) -> ModeResult {
    let options = QueryOptions {
        prefilter: PrefilterMode::AllClasses,
        candidates: CandidateSource::ClassIndex,
        top_k: Some(config.top_k),
        ..QueryOptions::default()
    }
    .with_two_stage(config.frontier);

    for query in queries.iter().take(4) {
        std::hint::black_box(db.search_scene(query, &options).expect("warm-up"));
    }

    let scored_before = db.metrics().stage2_scored.get();
    let mut latencies = Vec::new();
    for _ in 0..3 {
        for query in queries {
            let t0 = Instant::now();
            std::hint::black_box(db.search_scene(query, &options).expect("search"));
            latencies.push(t0.elapsed().as_secs_f64() * 1e6);
        }
    }
    latencies.sort_by(f64::total_cmp);
    let scored = db.metrics().stage2_scored.get() - scored_before;

    // Contended phase: `readers` threads hammer the battery; the
    // picker's job is to keep replicas evenly loaded.
    let stop = AtomicBool::new(false);
    let concurrent = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.readers)
            .map(|reader| {
                let stop = &stop;
                let options = &options;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = reader;
                    while !stop.load(Ordering::Relaxed) {
                        let t0 = Instant::now();
                        std::hint::black_box(
                            db.search_scene(&queries[i % queries.len()], options)
                                .expect("concurrent search"),
                        );
                        out.push(t0.elapsed().as_secs_f64() * 1e6);
                        i += 1;
                    }
                    out
                })
            })
            .collect();
        std::thread::sleep(config.window);
        stop.store(true, Ordering::SeqCst);
        let mut all: Vec<f64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader joins"))
            .collect();
        all.sort_by(f64::total_cmp);
        all
    });

    ModeResult {
        p50_us: percentile(&latencies, 50.0),
        p95_us: percentile(&latencies, 95.0),
        concurrent_p95_us: percentile(&concurrent, 95.0),
        scored,
        ordered_scatters: db.metrics().planner_ordered_scatters.get(),
        dense_scans: db.metrics().planner_dense_scans.get(),
    }
}

#[allow(clippy::cast_precision_loss, clippy::too_many_lines)]
fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) if message.is_empty() => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    println!("=== E16: planner v2 under hot-shard skew ===\n");
    println!(
        "{} images over {} shards x {} replicas, {} queries, top-{} frontier {}\n",
        config.images,
        config.shards,
        config.replicas,
        config.queries,
        config.top_k,
        config.frontier
    );

    let naive = build(&config, PlannerMode::Naive);
    let v2 = build(&config, PlannerMode::V2);
    let battery = queries(&config);

    // Equivalence first: the optimisation must not exist observably.
    let options = QueryOptions {
        prefilter: PrefilterMode::AllClasses,
        candidates: CandidateSource::ClassIndex,
        top_k: Some(config.top_k),
        ..QueryOptions::default()
    }
    .with_two_stage(config.frontier);
    for (qi, query) in battery.iter().enumerate() {
        let expect = naive.search_scene(query, &options).expect("naive search");
        let got = v2.search_scene(query, &options).expect("v2 search");
        assert_eq!(
            expect.len(),
            got.len(),
            "planner v2 changed result size (q{qi})"
        );
        for (a, b) in expect.iter().zip(&got) {
            assert!(
                a.id == b.id && a.score.to_bits() == b.score.to_bits(),
                "planner v2 broke bit-identity (q{qi})"
            );
        }
    }
    println!(
        "bit-identity: v2 == naive across {} queries\n",
        battery.len()
    );

    let naive_result = measure(&config, &naive, &battery);
    let v2_result = measure(&config, &v2, &battery);

    let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { 0.0 };
    let speedup_p50 = ratio(naive_result.p50_us, v2_result.p50_us);
    let speedup_p95 = ratio(naive_result.p95_us, v2_result.p95_us);
    let concurrent_speedup_p95 = ratio(naive_result.concurrent_p95_us, v2_result.concurrent_p95_us);

    println!(
        "{:>8} {:>10} {:>10} {:>14} {:>10}",
        "mode", "p50", "p95", "concurrent p95", "scored"
    );
    for (tag, r) in [("naive", &naive_result), ("v2", &v2_result)] {
        println!(
            "{:>8} {:>8.1}us {:>8.1}us {:>12.1}us {:>10}",
            tag, r.p50_us, r.p95_us, r.concurrent_p95_us, r.scored
        );
    }
    println!(
        "\nspeedup: p50 {speedup_p50:.2}x  p95 {speedup_p95:.2}x  concurrent p95 {concurrent_speedup_p95:.2}x"
    );
    println!(
        "v2 plan: {} ordered scatters, {} dense scans, scored {} vs naive {}",
        v2_result.ordered_scatters, v2_result.dense_scans, v2_result.scored, naive_result.scored
    );

    let mode_json = |r: &ModeResult| {
        format!(
            r#"{{"p50_us":{:.3},"p95_us":{:.3},"concurrent_p95_us":{:.3},"scored":{},"ordered_scatters":{},"dense_scans":{}}}"#,
            r.p50_us, r.p95_us, r.concurrent_p95_us, r.scored, r.ordered_scatters, r.dense_scans
        )
    };
    let json = format!(
        r#"{{"benchmark":"planner","images":{},"shards":{},"replicas":{},"queries":{},"readers":{},"top_k":{},"frontier":{},"naive":{},"v2":{},"speedup_p50":{speedup_p50:.4},"speedup_p95":{speedup_p95:.4},"concurrent_speedup_p95":{concurrent_speedup_p95:.4}}}"#,
        config.images,
        config.shards,
        config.replicas,
        config.queries,
        config.readers,
        config.top_k,
        config.frontier,
        mode_json(&naive_result),
        mode_json(&v2_result),
    );
    let write = std::fs::File::create(&config.out).and_then(|mut f| f.write_all(json.as_bytes()));
    match write {
        Ok(()) => {
            println!("\nreport written to {}", config.out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", config.out);
            ExitCode::FAILURE
        }
    }
}
