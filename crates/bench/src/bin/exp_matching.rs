//! E3 — matching cost: modified LCS (O(mn)) vs type-i maximum clique
//! (NP-complete).
//!
//! Matches random m-object queries against n-object images (m = n) and
//! reports wall-clock medians. The clique columns stop early: past a few
//! dozen objects with a small class alphabet the compatibility graph's
//! clique search becomes intractable, which is exactly the paper's §4
//! argument for the LCS.

use be2d_bench::{fmt_duration, median_time, standard_config, table_row};
use be2d_core::{be_lcs_length, convert_scene};
use be2d_strings2d::{typed_similarity, SimilarityType};
use be2d_workload::scene_from_seed;
use std::hint::black_box;

fn main() {
    println!("=== E3: matching cost, query (m objects) vs image (n = m) ===\n");
    let widths = [4, 12, 12, 12, 12, 14];
    let header = ["n", "LCS", "type-2", "type-1", "type-0", "clique graph"];
    println!("{}", table_row(&header.map(String::from), &widths));

    for n in [4usize, 8, 12, 16, 20, 24, 32, 48, 64] {
        let query = scene_from_seed(&standard_config(n), 1000 + n as u64);
        let image = scene_from_seed(&standard_config(n), 2000 + n as u64);
        let (qs, is) = (convert_scene(&query), convert_scene(&image));

        let lcs = median_time(5, || {
            black_box(
                be_lcs_length(black_box(qs.x()), black_box(is.x()))
                    + be_lcs_length(black_box(qs.y()), black_box(is.y())),
            );
        });

        // the clique baseline becomes intractable quickly; cap it
        let clique_cap = 24;
        let (t2, t1, t0, graph) = if n <= clique_cap {
            let mut stats = (0usize, 0usize);
            let t2 = median_time(3, || {
                let r =
                    typed_similarity(black_box(&query), black_box(&image), SimilarityType::Type2);
                stats = (r.graph_vertices, r.graph_edges);
                black_box(r.matched);
            });
            let t1 = median_time(3, || {
                black_box(
                    typed_similarity(black_box(&query), black_box(&image), SimilarityType::Type1)
                        .matched,
                );
            });
            let t0 = median_time(3, || {
                black_box(
                    typed_similarity(black_box(&query), black_box(&image), SimilarityType::Type0)
                        .matched,
                );
            });
            (
                fmt_duration(t2),
                fmt_duration(t1),
                fmt_duration(t0),
                format!("{}v/{}e", stats.0, stats.1),
            )
        } else {
            (
                "(skipped)".into(),
                "(skipped)".into(),
                "(skipped)".into(),
                "-".into(),
            )
        };

        let row = [n.to_string(), fmt_duration(lcs), t2, t1, t0, graph];
        println!("{}", table_row(&row, &widths));
    }
    println!("\nLCS grows smoothly as O(mn); the clique-based types blow up with the");
    println!("compatibility graph (type-0's permissive edges are the worst case) and");
    println!("are skipped beyond n = 24.");
}
