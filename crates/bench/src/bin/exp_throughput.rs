//! E7 — end-to-end indexing and query throughput ("the similarity can be
//! evaluated in a reasonable time", §4), with the prefilter and parallel
//! scan ablations.

use be2d_bench::{fmt_duration, median_time, table_row};
use be2d_db::{ImageDatabase, PrefilterMode, QueryOptions};
use be2d_workload::{derive_queries, Corpus, CorpusConfig, QueryKind, SceneConfig};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    println!("=== E7: database throughput ===\n");
    println!(
        "(host parallelism: {} threads)\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    for (images, classes) in [(1_000usize, 12usize), (10_000, 12), (10_000, 64)] {
        let corpus = Corpus::generate(
            &CorpusConfig {
                images,
                scene: SceneConfig {
                    objects: 8,
                    classes,
                    ..SceneConfig::default()
                },
            },
            3,
        );
        let t0 = Instant::now();
        let mut db = ImageDatabase::new();
        for (id, scene) in corpus.iter() {
            db.insert_scene(&id.to_string(), scene).expect("insert");
        }
        let index_time = t0.elapsed();
        println!(
            "corpus {images} ({classes} classes): indexed in {} ({:.0} images/s)",
            fmt_duration(index_time),
            images as f64 / index_time.as_secs_f64()
        );

        let queries = derive_queries(&corpus, &[QueryKind::DropObjects { keep: 4 }], 5, 11);
        let widths = [24, 12, 12, 12];
        println!(
            "{}",
            table_row(
                &[
                    "configuration".into(),
                    "candidates".into(),
                    "per query".into(),
                    "queries/s".into()
                ],
                &widths
            )
        );
        for (label, prefilter, parallel) in [
            ("serial, no prefilter", PrefilterMode::None, false),
            ("serial, any-class", PrefilterMode::AnyClass, false),
            ("serial, all-classes", PrefilterMode::AllClasses, false),
            ("parallel, any-class", PrefilterMode::AnyClass, true),
        ] {
            let options = QueryOptions {
                prefilter,
                parallel: parallel.into(),
                top_k: Some(10),
                ..QueryOptions::default()
            };
            // candidate count under this prefilter (average over queries)
            let candidates: usize = queries
                .iter()
                .map(|q| {
                    db.search_scene(
                        &q.scene,
                        &QueryOptions {
                            top_k: None,
                            min_score: 0.0,
                            ..options.clone()
                        },
                    )
                    .len()
                })
                .sum::<usize>()
                / queries.len();
            let per_query = median_time(3, || {
                for q in &queries {
                    black_box(db.search_scene(&q.scene, &options));
                }
            }) / queries.len() as u32;
            let row = [
                label.to_string(),
                candidates.to_string(),
                fmt_duration(per_query),
                format!("{:.0}", 1.0 / per_query.as_secs_f64()),
            ];
            println!("{}", table_row(&row, &widths));
        }
        println!();
    }
    println!("O(mn) per candidate keeps even the 10k-image scan interactive; the");
    println!("class-signature prefilter multiplies throughput by its selectivity.");
    println!("(The parallel scan only helps on multi-core hosts.)");
}
