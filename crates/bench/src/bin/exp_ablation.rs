//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Dummy-object suppression** — what happens to scores if the LCS
//!    may chain dummies (the rule the paper's Algorithm 2 adds)?
//!    We approximate "no rule" by comparing against the plain LCS over
//!    the same strings, computed by a reference implementation here.
//! 2. **ε-counting** — similarity with dummies counted vs boundary-only.
//! 3. **Normalisation** — query coverage vs Dice on partial queries.

use be2d_bench::table_row;
use be2d_core::{
    convert_scene, similarity_with, BeString, LcsTable, Normalization, SimilarityConfig,
};
use be2d_workload::{scene_from_seed, SceneConfig};

/// Reference *unmodified* LCS length (no consecutive-dummy rule) — the
/// textbook algorithm, for the ablation only.
fn plain_lcs(a: &BeString, b: &BeString) -> usize {
    let (x, y) = (a.symbols(), b.symbols());
    let cols = y.len() + 1;
    let mut w = vec![0usize; (x.len() + 1) * cols];
    for i in 1..=x.len() {
        for j in 1..=y.len() {
            w[i * cols + j] = if x[i - 1] == y[j - 1] {
                w[(i - 1) * cols + (j - 1)] + 1
            } else {
                w[(i - 1) * cols + j].max(w[i * cols + (j - 1)])
            };
        }
    }
    w[x.len() * cols + y.len()]
}

fn main() {
    println!("=== Ablations ===\n");
    println!("-- 1. consecutive-dummy rule (unrelated image pairs, x-axis) --");
    let widths = [6, 12, 12, 12];
    println!(
        "{}",
        table_row(
            &[
                "n".into(),
                "modified".into(),
                "plain LCS".into(),
                "inflation".into()
            ],
            &widths
        )
    );
    for n in [4usize, 8, 16, 32] {
        let cfg = SceneConfig {
            objects: n,
            classes: 6,
            ..SceneConfig::default()
        };
        // disjoint class alphabets would need distinct configs; instead
        // compare structurally unrelated seeds
        let a = convert_scene(&scene_from_seed(&cfg, 1111 + n as u64));
        let b = convert_scene(&scene_from_seed(&cfg, 9999 + n as u64));
        let modified = LcsTable::build(a.x(), b.x()).length();
        let plain = plain_lcs(a.x(), b.x());
        let row = [
            n.to_string(),
            modified.to_string(),
            plain.to_string(),
            format!(
                "+{:.0}%",
                100.0 * (plain as f64 - modified as f64) / modified as f64
            ),
        ];
        println!("{}", table_row(&row, &widths));
        assert!(plain >= modified);
    }
    println!("\nWithout the rule, chained free-space dummies inflate the match length");
    println!("between unrelated images — the modified algorithm suppresses exactly that.");

    println!("\n-- 2+3. similarity configuration on a 50%-subset query --");
    let cfg = SceneConfig {
        objects: 8,
        classes: 8,
        ..SceneConfig::default()
    };
    let scene = scene_from_seed(&cfg, 77);
    let mut half = be2d_geometry::Scene::new(scene.width(), scene.height()).expect("frame");
    for o in scene.objects().iter().take(4) {
        half.add(o.class().clone(), o.mbr()).expect("fits");
    }
    let (q, d) = (convert_scene(&half), convert_scene(&scene));

    let widths = [18, 16, 9];
    println!(
        "{}",
        table_row(
            &[
                "normalisation".into(),
                "count dummies?".into(),
                "score".into()
            ],
            &widths
        )
    );
    for norm in [
        Normalization::QueryCoverage,
        Normalization::TargetCoverage,
        Normalization::Dice,
    ] {
        for count_dummies in [true, false] {
            let cfg = SimilarityConfig {
                normalization: norm,
                count_dummies,
                ..SimilarityConfig::default()
            };
            let sim = similarity_with(&q, &d, &cfg);
            let row = [
                norm.to_string(),
                count_dummies.to_string(),
                format!("{:.3}", sim.score),
            ];
            println!("{}", table_row(&row, &widths));
        }
    }
    println!("\nQuery-coverage treats the subset as fully matched (recall-style);");
    println!("Dice splits the difference; boundary-only counting removes the");
    println!("free-space contribution. The library default is Dice over all symbols.");
}
