//! E13 — online reshard impact: serving latency before, during and
//! after a live 4 → 8 shard migration, swept over reshard batch sizes.
//!
//! Each sweep point loads the same corpus into a fresh
//! [`ReplicatedImageDatabase`], keeps `readers` search threads and one
//! paced writer running, measures a *before* window, runs
//! [`Resharder`] to the target shard count (collecting the *during*
//! latencies and the migration wall clock), then measures an *after*
//! window. Larger batches finish the migration in fewer
//! stop-the-world steps but hold every lock longer per step — the p99
//! column is where that trade shows up.
//!
//! Writes `BENCH_reshard.json`:
//!
//! ```json
//! {"benchmark":"reshard","from":4,"to":8,"images":1200,"host_threads":4,
//!  "sweep":[{"batch":16,"reshard_ms":...,"moved":...,"batches":...,
//!            "before":{"p50_ms":...},"during":{...},"after":{...}}, ...]}
//! ```

use be2d_bench::standard_config;
use be2d_db::{Parallelism, QueryOptions, ReplicatedImageDatabase, Resharder};
use be2d_workload::metrics::percentile;
use be2d_workload::{derive_queries, Corpus, CorpusConfig, QueryKind, SceneConfig};
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct Config {
    images: usize,
    from: usize,
    to: usize,
    replicas: usize,
    readers: usize,
    window: Duration,
    write_pause: Duration,
    batches: Vec<usize>,
    out: String,
}

impl Config {
    fn full() -> Config {
        Config {
            images: 1200,
            from: 4,
            to: 8,
            replicas: 2,
            readers: host_threads().min(4),
            window: Duration::from_millis(800),
            write_pause: Duration::from_millis(1),
            batches: vec![16, 128, 1024],
            out: "BENCH_reshard.json".into(),
        }
    }

    /// CI-sized preset: same shape, a fraction of the wall clock.
    fn small() -> Config {
        Config {
            images: 500,
            window: Duration::from_millis(400),
            batches: vec![16, 256],
            ..Config::full()
        }
    }
}

fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |c| c.get())
}

fn usage() -> &'static str {
    "exp_reshard — serving latency across a live shard migration, per batch size\n\
     \n\
     options:\n\
       --preset small|full  workload size (default full; CI uses small)\n\
       --images N           corpus size per sweep point\n\
       --from N             shard count before the migration (default 4)\n\
       --to N               shard count after the migration (default 8)\n\
       --replicas R         replicas per shard (default 2)\n\
       --readers N          searcher threads (default min(4, host threads))\n\
       --window-ms D        before/after measurement window (default 800)\n\
       --out PATH           JSON report path (default BENCH_reshard.json)\n\
       --help               this text\n"
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut overrides: Vec<(String, String)> = Vec::new();
    let mut config = Config::full();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        if flag == "--preset" {
            config = match value.as_str() {
                "small" => Config::small(),
                "full" => Config::full(),
                other => return Err(format!("unknown preset {other:?} (small | full)")),
            };
        } else {
            overrides.push((flag.clone(), value.clone()));
        }
    }
    let number = |value: &str, flag: &str| -> Result<usize, String> {
        value
            .parse()
            .map_err(|_| format!("{flag} must be a number"))
    };
    for (flag, value) in overrides {
        match flag.as_str() {
            "--images" => config.images = number(&value, "--images")?,
            "--from" => config.from = number(&value, "--from")?.max(1),
            "--to" => config.to = number(&value, "--to")?.max(1),
            "--replicas" => config.replicas = number(&value, "--replicas")?.max(1),
            "--readers" => config.readers = number(&value, "--readers")?,
            "--window-ms" => {
                config.window = Duration::from_millis(number(&value, "--window-ms")? as u64);
            }
            "--out" => config.out = value,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if config.readers == 0 {
        return Err("--readers must be at least 1".into());
    }
    if config.from == config.to {
        return Err("--from and --to must differ (nothing to migrate)".into());
    }
    Ok(config)
}

/// Measurement phases, used to tag every search latency.
const BEFORE: usize = 0;
const DURING: usize = 1;
const AFTER: usize = 2;
const STOP: usize = 3;

struct PhaseLatencies {
    per_phase: [Vec<f64>; 3],
}

struct SweepPoint {
    batch: usize,
    reshard_ms: f64,
    moved: usize,
    migration_batches: u64,
    searches: [u64; 3],
    p50: [f64; 3],
    p95: [f64; 3],
    p99: [f64; 3],
}

#[allow(clippy::cast_precision_loss)]
fn run_point(config: &Config, corpus: &Corpus, batch: usize) -> SweepPoint {
    let db = ReplicatedImageDatabase::with_topology(config.from, config.replicas);
    for (id, scene) in corpus.iter() {
        db.insert_scene(&id.to_string(), scene)
            .expect("prefill insert");
    }
    let queries = derive_queries(corpus, &[QueryKind::DropObjects { keep: 4 }], 24, 13);
    let options = QueryOptions {
        top_k: Some(10),
        parallel: Parallelism::Off,
        ..QueryOptions::serving()
    };
    for query in queries.iter().take(4) {
        std::hint::black_box(db.search_scene(&query.scene, &options).expect("search"));
    }

    let scenes: Vec<_> = corpus.iter().map(|(_, scene)| scene).collect();
    let phase = AtomicUsize::new(BEFORE);
    let (latencies, report) = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..config.readers)
            .map(|reader| {
                let db = db.clone();
                let queries = &queries;
                let options = &options;
                let phase = &phase;
                scope.spawn(move || {
                    let mut out = PhaseLatencies {
                        per_phase: [Vec::new(), Vec::new(), Vec::new()],
                    };
                    let mut i = reader;
                    loop {
                        let tag = phase.load(Ordering::Relaxed);
                        if tag == STOP {
                            break;
                        }
                        let query = &queries[i % queries.len()];
                        let t0 = Instant::now();
                        std::hint::black_box(
                            db.search_scene(&query.scene, options).expect("search"),
                        );
                        out.per_phase[tag].push(t0.elapsed().as_secs_f64() * 1e3);
                        i += 1;
                    }
                    out
                })
            })
            .collect();
        // One paced writer keeps the routing epoch under real mutation
        // pressure for the whole run.
        let writer = {
            let db = db.clone();
            let scenes = &scenes;
            let phase = &phase;
            let pause = config.write_pause;
            scope.spawn(move || {
                let mut i = 0usize;
                while phase.load(Ordering::Relaxed) != STOP {
                    let scene = scenes[i % scenes.len()];
                    let id = db.insert_scene(&format!("w{i}"), scene).expect("insert");
                    db.remove(id).expect("remove own insert");
                    i += 1;
                    std::thread::sleep(pause);
                }
            })
        };

        std::thread::sleep(config.window);
        phase.store(DURING, Ordering::Relaxed);
        let t0 = Instant::now();
        let report = Resharder::new(&db)
            .batch_ids(batch)
            .run(config.to)
            .expect("reshard");
        let reshard_ms = t0.elapsed().as_secs_f64() * 1e3;
        phase.store(AFTER, Ordering::Relaxed);
        std::thread::sleep(config.window);
        phase.store(STOP, Ordering::Relaxed);

        let mut merged = PhaseLatencies {
            per_phase: [Vec::new(), Vec::new(), Vec::new()],
        };
        for handle in readers {
            let out = handle.join().expect("reader panicked");
            for (into, from) in merged.per_phase.iter_mut().zip(out.per_phase) {
                into.extend(from);
            }
        }
        writer.join().expect("writer panicked");
        for lane in &mut merged.per_phase {
            lane.sort_by(f64::total_cmp);
        }
        (merged, (report, reshard_ms))
    });
    let (progress, reshard_ms) = report;
    assert_eq!(db.shard_count(), config.to, "migration finished");

    let stat = |lane: &[f64], p: f64| percentile(lane, p);
    SweepPoint {
        batch,
        reshard_ms,
        moved: progress.moved_records,
        migration_batches: progress.batches,
        searches: [
            latencies.per_phase[BEFORE].len() as u64,
            latencies.per_phase[DURING].len() as u64,
            latencies.per_phase[AFTER].len() as u64,
        ],
        p50: [
            stat(&latencies.per_phase[BEFORE], 50.0),
            stat(&latencies.per_phase[DURING], 50.0),
            stat(&latencies.per_phase[AFTER], 50.0),
        ],
        p95: [
            stat(&latencies.per_phase[BEFORE], 95.0),
            stat(&latencies.per_phase[DURING], 95.0),
            stat(&latencies.per_phase[AFTER], 95.0),
        ],
        p99: [
            stat(&latencies.per_phase[BEFORE], 99.0),
            stat(&latencies.per_phase[DURING], 99.0),
            stat(&latencies.per_phase[AFTER], 99.0),
        ],
    }
}

fn phase_json(point: &SweepPoint, phase: usize) -> String {
    format!(
        r#"{{"searches":{},"p50_ms":{:.4},"p95_ms":{:.4},"p99_ms":{:.4}}}"#,
        point.searches[phase], point.p50[phase], point.p95[phase], point.p99[phase]
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) if message.is_empty() => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    println!("=== E13: online reshard impact (serving latency across a live migration) ===\n");
    println!(
        "corpus {} images, {} -> {} shards x {} replicas, {} readers, {:.1}s windows, host threads: {}\n",
        config.images,
        config.from,
        config.to,
        config.replicas,
        config.readers,
        config.window.as_secs_f64(),
        host_threads()
    );

    let corpus = Corpus::generate(
        &CorpusConfig {
            images: config.images,
            scene: SceneConfig {
                objects: 8,
                ..standard_config(8)
            },
        },
        5,
    );

    println!(
        "{:>6}  {:>11}  {:>7}  {:>8}  {:>24}  {:>24}  {:>24}",
        "batch",
        "reshard ms",
        "moved",
        "batches",
        "before p50/p95/p99",
        "during p50/p95/p99",
        "after p50/p95/p99"
    );
    let mut sweep = Vec::new();
    for &batch in &config.batches {
        let point = run_point(&config, &corpus, batch);
        println!(
            "{:>6}  {:>11.1}  {:>7}  {:>8}  {:>8.2}/{:>6.2}/{:>6.2}  {:>8.2}/{:>6.2}/{:>6.2}  {:>8.2}/{:>6.2}/{:>6.2}",
            point.batch,
            point.reshard_ms,
            point.moved,
            point.migration_batches,
            point.p50[BEFORE],
            point.p95[BEFORE],
            point.p99[BEFORE],
            point.p50[DURING],
            point.p95[DURING],
            point.p99[DURING],
            point.p50[AFTER],
            point.p95[AFTER],
            point.p99[AFTER],
        );
        sweep.push(point);
    }

    let rows: Vec<String> = sweep
        .iter()
        .map(|p| {
            format!(
                r#"{{"batch":{},"reshard_ms":{:.3},"moved":{},"batches":{},"before":{},"during":{},"after":{}}}"#,
                p.batch,
                p.reshard_ms,
                p.moved,
                p.migration_batches,
                phase_json(p, BEFORE),
                phase_json(p, DURING),
                phase_json(p, AFTER),
            )
        })
        .collect();
    let json = format!(
        r#"{{"benchmark":"reshard","images":{},"from":{},"to":{},"replicas":{},"readers":{},"window_s":{:.3},"host_threads":{},"sweep":[{}]}}"#,
        config.images,
        config.from,
        config.to,
        config.replicas,
        config.readers,
        config.window.as_secs_f64(),
        host_threads(),
        rows.join(",")
    );
    let write = std::fs::File::create(&config.out).and_then(|mut f| f.write_all(json.as_bytes()));
    match write {
        Ok(()) => {
            println!("\nreport written to {}", config.out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", config.out);
            ExitCode::FAILURE
        }
    }
}
