//! E5 — rotation/reflection retrieval via string reversal (§4).
//!
//! Plants each D4-transformed copy of corpus images as queries and
//! reports the hit rate of plain vs transform-invariant search, plus the
//! cost of the reversal itself (it is O(m) string work, not geometry).

use be2d_bench::{fmt_duration, median_time, table_row};
use be2d_core::{convert_scene, transformed};
use be2d_db::{ImageDatabase, QueryOptions};
use be2d_geometry::Transform;
use be2d_workload::{derive_queries, Corpus, CorpusConfig, QueryKind, SceneConfig};
use std::hint::black_box;

fn main() {
    println!("=== E5: rotation/reflection retrieval (200-image corpus) ===\n");
    let corpus = Corpus::generate(
        &CorpusConfig {
            images: 200,
            scene: SceneConfig {
                width: 256,
                height: 256,
                objects: 6,
                ..Default::default()
            },
        },
        13,
    );
    let mut db = ImageDatabase::new();
    for (id, scene) in corpus.iter() {
        db.insert_scene(&id.to_string(), scene).expect("insert");
    }

    let widths = [16, 11, 14, 19];
    let header = [
        "query transform",
        "plain-top1",
        "invariant-top1",
        "recovered transform",
    ];
    println!("{}", table_row(&header.map(String::from), &widths));

    for t in [
        Transform::Rotate90,
        Transform::Rotate180,
        Transform::Rotate270,
        Transform::ReflectX,
        Transform::ReflectY,
    ] {
        let queries = derive_queries(&corpus, &[QueryKind::Transformed(t)], 15, 5);
        let mut plain_hits = 0usize;
        let mut inv_hits = 0usize;
        let mut recovered = String::from("-");
        for q in &queries {
            let target = q.target.expect("target").index();
            let plain = db.search_scene(&q.scene, &QueryOptions::default());
            plain_hits += usize::from(plain.first().map(|h| h.id.index()) == Some(target));
            let inv = db.search_scene(&q.scene, &QueryOptions::transform_invariant());
            if inv.first().map(|h| h.id.index()) == Some(target) {
                inv_hits += 1;
                recovered = inv[0].transform.to_string();
            }
        }
        let row = [
            t.to_string(),
            format!("{}/{}", plain_hits, queries.len()),
            format!("{}/{}", inv_hits, queries.len()),
            recovered,
        ];
        println!("{}", table_row(&row, &widths));
        assert_eq!(
            inv_hits,
            queries.len(),
            "invariant search must always recover"
        );
    }

    // cost of the string reversal itself
    let scene = corpus.scene(be2d_workload::ImageId(0)).expect("scene");
    let s = convert_scene(scene);
    let reversal = median_time(200, || {
        for t in Transform::PAPER_SET {
            black_box(transformed(black_box(&s), t));
        }
    });
    println!(
        "\nall six paper transforms of a {}-object query take {} total (pure string\nreversal — no geometric reconversion, no operator tables).",
        scene.len(),
        fmt_duration(reversal)
    );
}
