//! E4 — retrieval quality on partial matches: LCS grading vs the
//! type-0/1/2 clique counts.
//!
//! A 500-image corpus; queries derived from known sources: exact copies,
//! object subsets (drop to k), jittered positions, and decoys. Reports
//! mean reciprocal rank and top-1 hit rates per method.

use be2d_bench::table_row;
use be2d_db::{ImageDatabase, QueryOptions};
use be2d_strings2d::{typed_similarity, SimilarityType};
use be2d_workload::metrics::{mean, reciprocal_rank};
use be2d_workload::{derive_queries, Corpus, CorpusConfig, ImageId, QueryKind, SceneConfig};
use std::collections::HashSet;

fn main() {
    println!("=== E4: retrieval quality (500-image corpus, 25 queries/kind) ===\n");
    let corpus = Corpus::generate(
        &CorpusConfig {
            images: 500,
            scene: SceneConfig {
                objects: 6,
                classes: 5,
                ..SceneConfig::default()
            },
        },
        42,
    );
    let mut db = ImageDatabase::new();
    for (id, scene) in corpus.iter() {
        db.insert_scene(&id.to_string(), scene).expect("insert");
    }

    let kinds = [
        QueryKind::Exact,
        QueryKind::DropObjects { keep: 4 },
        QueryKind::DropObjects { keep: 2 },
        QueryKind::Jitter { max_delta: 16 },
        QueryKind::Jitter { max_delta: 48 },
    ];
    let queries = derive_queries(&corpus, &kinds, 25, 7);

    let widths = [12, 9, 9, 9, 9, 11, 11];
    let header = [
        "kind", "MRR-LCS", "MRR-t2", "MRR-t1", "MRR-t0", "top1-LCS", "top1-t2",
    ];
    println!("{}", table_row(&header.map(String::from), &widths));

    for kind in kinds {
        let subset: Vec<_> = queries.iter().filter(|q| q.kind == kind).collect();
        let mut rr = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        let mut top1_lcs = 0usize;
        let mut top1_t2 = 0usize;
        for q in &subset {
            let target = q.target.expect("has target");
            let relevant: HashSet<ImageId> = [target].into_iter().collect();

            let hits = db.search_scene(&q.scene, &QueryOptions::default().with_top_k(None));
            let ranked: Vec<ImageId> = hits.iter().map(|h| ImageId(h.id.index())).collect();
            rr[0].push(reciprocal_rank(&ranked, &relevant));
            top1_lcs += usize::from(ranked.first() == Some(&target));

            for (slot, ty) in [
                (1, SimilarityType::Type2),
                (2, SimilarityType::Type1),
                (3, SimilarityType::Type0),
            ] {
                let mut scored: Vec<(ImageId, usize)> = corpus
                    .iter()
                    .map(|(id, scene)| (id, typed_similarity(&q.scene, scene, ty).matched))
                    .collect();
                scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let ranked: Vec<ImageId> = scored.iter().map(|(id, _)| *id).collect();
                rr[slot].push(reciprocal_rank(&ranked, &relevant));
                if slot == 1 {
                    top1_t2 += usize::from(ranked.first() == Some(&target));
                }
            }
        }
        let row = [
            kind.to_string(),
            format!("{:.3}", mean(&rr[0])),
            format!("{:.3}", mean(&rr[1])),
            format!("{:.3}", mean(&rr[2])),
            format!("{:.3}", mean(&rr[3])),
            format!("{}/{}", top1_lcs, subset.len()),
            format!("{}/{}", top1_t2, subset.len()),
        ];
        println!("{}", table_row(&row, &widths));
    }

    // decoys: the LCS scores should stay clearly below exact-match level
    let decoys = derive_queries(&corpus, &[QueryKind::Decoy], 25, 9);
    let mut best_scores = Vec::new();
    for q in &decoys {
        let hits = db.search_scene(&q.scene, &QueryOptions::default());
        if let Some(h) = hits.first() {
            best_scores.push(h.score);
        }
    }
    println!(
        "\ndecoy queries: best score mean {:.3} (max {:.3}) — well below the 1.0 of a true match",
        mean(&best_scores),
        best_scores.iter().cloned().fold(0.0, f64::max)
    );
}
