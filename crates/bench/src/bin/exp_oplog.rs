//! E14 — operation-log economics: what the per-shard op log buys and
//! what the write-ahead log costs.
//!
//! Three measurements over the same corpus:
//!
//! 1. **Catch-up: replay vs clone.** A replica is failed, the leader
//!    absorbs a gap of writes, and the replica is rebuilt. When the gap
//!    fits the op-log window the rebuild replays just the missed ops;
//!    when the window has wrapped it falls back to a full clone. The
//!    experiment times both paths on identical state and reports the
//!    ratio — the incremental catch-up the log exists for.
//! 2. **WAL durability cost.** Insert throughput with the WAL off,
//!    fsyncing every record (`fsync_every=1`, the crash-durable
//!    setting), and fsyncing in batches (`fsync_every=64`). This is
//!    the price list for the durability trade-off documented in the
//!    README.
//! 3. **Ack latency by replication mode.** Per-insert latency at
//!    R=3 under sync (ack = every healthy replica) vs async (ack =
//!    leader; followers drain off the write path).
//!
//! Writes `BENCH_oplog.json`:
//!
//! ```json
//! {"benchmark":"oplog","catchup":{"replay_ms":...,"clone_ms":...,
//!  "replay_speedup":...},"wal":[{"config":"off","inserts_per_s":...}],
//!  "ack":[{"mode":"sync","p50_us":...,"p95_us":...}]}
//! ```

use be2d_bench::standard_config;
use be2d_db::{PlannerMode, ReplicaConfig, ReplicatedImageDatabase, ReplicationMode, WalConfig};
use be2d_workload::metrics::percentile;
use be2d_workload::{Corpus, CorpusConfig, SceneConfig};
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

#[derive(Debug, Clone)]
struct Config {
    /// Corpus prefilled before each measurement.
    images: usize,
    /// Writes absorbed while the replica is down (the catch-up gap).
    gap: usize,
    /// Inserts per WAL / ack measurement.
    writes: usize,
    out: String,
}

impl Config {
    fn full() -> Config {
        // The corpus dwarfs the gap on purpose: incremental catch-up
        // exists for the regime where re-cloning the whole replica
        // costs far more than replaying the handful of missed ops.
        Config {
            images: 2000,
            gap: 100,
            writes: 400,
            out: "BENCH_oplog.json".into(),
        }
    }

    /// CI-sized preset: same shape, a fraction of the wall clock.
    fn small() -> Config {
        Config {
            images: 600,
            gap: 40,
            writes: 150,
            ..Config::full()
        }
    }
}

fn usage() -> &'static str {
    "exp_oplog — price the op log: catch-up replay vs clone, WAL fsync cost, ack latency by mode\n\
     \n\
     options:\n\
       --preset small|full  workload size (default full; CI uses small)\n\
       --images N           corpus prefilled before each measurement\n\
       --gap N              writes absorbed while the replica is down\n\
       --writes N           inserts per WAL / ack-latency measurement\n\
       --out PATH           JSON report path (default BENCH_oplog.json)\n\
       --help               this text\n"
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut overrides: Vec<(String, String)> = Vec::new();
    let mut config = Config::full();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        if flag == "--preset" {
            config = match value.as_str() {
                "small" => Config::small(),
                "full" => Config::full(),
                other => return Err(format!("unknown preset {other:?} (small | full)")),
            };
        } else {
            overrides.push((flag.clone(), value.clone()));
        }
    }
    for (flag, value) in overrides {
        let parsed = value.parse::<usize>();
        match flag.as_str() {
            "--images" => config.images = parsed.map_err(|_| "--images must be a number")?,
            "--gap" => config.gap = parsed.map_err(|_| "--gap must be a number")?,
            "--writes" => config.writes = parsed.map_err(|_| "--writes must be a number")?,
            "--out" => config.out = value,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if config.gap == 0 || config.writes == 0 || config.images == 0 {
        return Err("--images, --gap and --writes must be at least 1".into());
    }
    Ok(config)
}

fn corpus(config: &Config) -> Corpus {
    Corpus::generate(
        &CorpusConfig {
            images: config.images,
            scene: SceneConfig {
                objects: 8,
                ..standard_config(8)
            },
        },
        7,
    )
}

fn open(
    mode: ReplicationMode,
    oplog_window: usize,
    wal: Option<WalConfig>,
) -> ReplicatedImageDatabase {
    ReplicatedImageDatabase::with_config(ReplicaConfig {
        shards: 1,
        replicas: 2,
        mode,
        oplog_window,
        planner: PlannerMode::default(),
        wal,
    })
    .expect("topology opens")
}

fn prefill(db: &ReplicatedImageDatabase, corpus: &Corpus) {
    for (id, scene) in corpus.iter() {
        db.insert_scene(&id.to_string(), scene).expect("prefill");
    }
}

/// Fails replica 1, absorbs `gap` writes, times the rebuild. With
/// `oplog_window` ≥ gap the rebuild replays; with a window the gap has
/// wrapped it clones.
fn time_catchup(config: &Config, corpus: &Corpus, oplog_window: usize) -> (f64, u64, u64) {
    let db = open(ReplicationMode::Sync, oplog_window, None);
    prefill(&db, corpus);
    db.fail_replica(0, 1).expect("fail replica");
    let scenes: Vec<_> = corpus.iter().map(|(_, scene)| scene).collect();
    for i in 0..config.gap {
        db.insert_scene(&format!("gap-{i}"), scenes[i % scenes.len()])
            .expect("gap insert");
    }
    let t0 = Instant::now();
    db.rebuild_replica(0, 1).expect("rebuild");
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = db.replication_stats();
    (elapsed_ms, stats.catchup_replays, stats.catchup_clones)
}

/// Insert throughput under one WAL configuration.
#[allow(clippy::cast_precision_loss)]
fn time_wal(config: &Config, corpus: &Corpus, wal: Option<WalConfig>) -> f64 {
    let db = open(ReplicationMode::Sync, 1024, wal);
    let scenes: Vec<_> = corpus.iter().map(|(_, scene)| scene).collect();
    let t0 = Instant::now();
    for i in 0..config.writes {
        db.insert_scene(&format!("w-{i}"), scenes[i % scenes.len()])
            .expect("insert");
    }
    config.writes as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Per-insert ack latency (µs percentiles) at R=3 under `mode`.
fn time_ack(config: &Config, corpus: &Corpus, mode: ReplicationMode) -> (f64, f64) {
    let db = ReplicatedImageDatabase::with_config(ReplicaConfig {
        shards: 1,
        replicas: 3,
        mode,
        oplog_window: 4096,
        planner: PlannerMode::default(),
        wal: None,
    })
    .expect("topology opens");
    let scenes: Vec<_> = corpus.iter().map(|(_, scene)| scene).collect();
    let mut latencies = Vec::with_capacity(config.writes);
    for i in 0..config.writes {
        let t0 = Instant::now();
        db.insert_scene(&format!("a-{i}"), scenes[i % scenes.len()])
            .expect("insert");
        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    db.flush_replication();
    latencies.sort_by(f64::total_cmp);
    (percentile(&latencies, 50.0), percentile(&latencies, 95.0))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) if message.is_empty() => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    println!("=== E14: op-log economics (catch-up, WAL cost, ack latency) ===\n");
    println!(
        "corpus {} images, catch-up gap {}, {} writes per measurement\n",
        config.images, config.gap, config.writes
    );
    let corpus = corpus(&config);

    // 1. Catch-up: a window that holds the gap vs one it has wrapped.
    let (replay_ms, replays, clones) = time_catchup(&config, &corpus, config.gap * 4);
    assert!(
        replays >= 1 && clones == 0,
        "gap within window must replay (replays={replays}, clones={clones})"
    );
    let (clone_ms, replays2, clones2) = time_catchup(&config, &corpus, (config.gap / 8).max(2));
    assert!(
        clones2 >= 1 && replays2 == 0,
        "wrapped window must clone (replays={replays2}, clones={clones2})"
    );
    let replay_speedup = if replay_ms > 0.0 {
        clone_ms / replay_ms
    } else {
        0.0
    };
    println!(
        "catch-up over a {}-write gap: replay {replay_ms:.2}ms vs clone {clone_ms:.2}ms ({replay_speedup:.1}x)",
        config.gap
    );

    // 2. WAL durability price list.
    let wal_dir = std::env::temp_dir().join(format!("be2d_exp_oplog_{}", std::process::id()));
    let wal_at = |tag: &str, fsync_every: u64| WalConfig {
        dir: wal_dir.join(tag),
        fsync_every,
    };
    let wal_points = [
        ("off", time_wal(&config, &corpus, None)),
        (
            "fsync-every-1",
            time_wal(&config, &corpus, Some(wal_at("f1", 1))),
        ),
        (
            "fsync-every-64",
            time_wal(&config, &corpus, Some(wal_at("f64", 64))),
        ),
    ];
    println!("\nWAL insert throughput:");
    for (tag, per_s) in &wal_points {
        println!("  {tag:>15}: {per_s:>10.1} inserts/s");
    }
    std::fs::remove_dir_all(&wal_dir).ok();

    // 3. Ack latency by mode at R=3.
    let ack_points = [
        ("sync", time_ack(&config, &corpus, ReplicationMode::Sync)),
        (
            "quorum",
            time_ack(&config, &corpus, ReplicationMode::Quorum),
        ),
        (
            "async",
            time_ack(&config, &corpus, ReplicationMode::Async { max_lag: 1024 }),
        ),
    ];
    println!("\nack latency at R=3:");
    for (mode, (p50, p95)) in &ack_points {
        println!("  {mode:>7}: p50 {p50:>8.1}us  p95 {p95:>8.1}us");
    }

    let wal_rows: Vec<String> = wal_points
        .iter()
        .map(|(tag, per_s)| format!(r#"{{"config":{tag:?},"inserts_per_s":{per_s:.3}}}"#))
        .collect();
    let ack_rows: Vec<String> = ack_points
        .iter()
        .map(|(mode, (p50, p95))| {
            format!(r#"{{"mode":{mode:?},"p50_us":{p50:.3},"p95_us":{p95:.3}}}"#)
        })
        .collect();
    let json = format!(
        r#"{{"benchmark":"oplog","images":{},"gap":{},"writes":{},"catchup":{{"replay_ms":{:.4},"clone_ms":{:.4},"replay_speedup":{:.4}}},"wal":[{}],"ack":[{}]}}"#,
        config.images,
        config.gap,
        config.writes,
        replay_ms,
        clone_ms,
        replay_speedup,
        wal_rows.join(","),
        ack_rows.join(",")
    );
    let write = std::fs::File::create(&config.out).and_then(|mut f| f.write_all(json.as_bytes()));
    match write {
        Ok(()) => {
            println!("\nreport written to {}", config.out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", config.out);
            ExitCode::FAILURE
        }
    }
}
