//! Runs every experiment binary in sequence — regenerates all numbers
//! recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p be2d-bench --bin run_all
//! ```

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for name in [
        "exp_figure1",
        "exp_storage",
        "exp_matching",
        "exp_retrieval",
        "exp_transform",
        "exp_maintenance",
        "exp_throughput",
        "exp_ablation",
        "exp_lcs_gap",
        "exp_noise",
        "exp_twostage",
    ] {
        println!("\n################ {name} ################\n");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("cannot launch {name}: {e}"));
        if !status.success() {
            failed.push(name);
        }
    }
    if failed.is_empty() {
        println!("\nall experiments completed");
    } else {
        eprintln!("\nfailed experiments: {failed:?}");
        std::process::exit(1);
    }
}
