//! Optimality gap of Algorithm 2's signed-table heuristic.
//!
//! The paper's DP records the "ends with a dummy" flag as a sign on a
//! single canonical value per cell; when a cell admits two equally long
//! constrained subsequences with different tails, one is forgotten and a
//! later ε-extension may be refused. This experiment compares Algorithm 2
//! against the exact two-state DP on random image pairs and reports how
//! often and by how much the heuristic under-approximates — a
//! reproduction finding the paper does not discuss.

use be2d_bench::{standard_config, table_row};
use be2d_core::{be_lcs_length, convert_scene, exact_constrained_lcs_length, BeString, BeSymbol};
use be2d_geometry::ObjectClass;
use be2d_workload::scene_from_seed;

/// Enumerates every valid BE-string of exactly `len` symbols over classes
/// A and B, and reports the worst heuristic-vs-exact gap over all pairs.
fn exhaustive_gap(len: usize) -> (usize, usize, Option<(BeString, BeString)>) {
    fn alphabet() -> Vec<BeSymbol> {
        let (a, b) = (ObjectClass::new("A"), ObjectClass::new("B"));
        vec![
            BeSymbol::Dummy,
            BeSymbol::begin(a.clone()),
            BeSymbol::end(a),
            BeSymbol::begin(b.clone()),
            BeSymbol::end(b),
        ]
    }
    fn enumerate(len: usize, prefix: &mut Vec<BeSymbol>, out: &mut Vec<BeString>) {
        if prefix.len() == len {
            if let Ok(s) = BeString::new(prefix.clone()) {
                out.push(s);
            }
            return;
        }
        for sym in alphabet() {
            prefix.push(sym);
            enumerate(len, prefix, out);
            prefix.pop();
        }
    }
    let mut strings = Vec::new();
    enumerate(len, &mut Vec::new(), &mut strings);
    let mut pairs = 0usize;
    let mut max_gap = 0usize;
    let mut witness = None;
    for a in &strings {
        for b in &strings {
            pairs += 1;
            let gap = exact_constrained_lcs_length(a, b) - be_lcs_length(a, b);
            if gap > max_gap {
                max_gap = gap;
                witness = Some((a.clone(), b.clone()));
            }
        }
    }
    (pairs, max_gap, witness)
}

fn main() {
    println!("=== LCS optimality gap: Algorithm 2 vs exact constrained DP ===\n");
    let widths = [4, 8, 10, 10, 12];
    let header = ["n", "pairs", "gap>0", "max gap", "mean rel gap"];
    println!("{}", table_row(&header.map(String::from), &widths));

    for n in [2usize, 4, 8, 16, 32] {
        let pairs = 200usize;
        let mut gaps = 0usize;
        let mut max_gap = 0usize;
        let mut rel_sum = 0.0f64;
        for k in 0..pairs as u64 {
            let a = convert_scene(&scene_from_seed(&standard_config(n), 7_000 + 2 * k));
            let b = convert_scene(&scene_from_seed(&standard_config(n), 7_001 + 2 * k));
            for (qa, qb) in [(a.x(), b.x()), (a.y(), b.y())] {
                let paper = be_lcs_length(qa, qb);
                let exact = exact_constrained_lcs_length(qa, qb);
                assert!(paper <= exact, "heuristic must lower-bound the exact value");
                let gap = exact - paper;
                if gap > 0 {
                    gaps += 1;
                    max_gap = max_gap.max(gap);
                }
                rel_sum += gap as f64 / exact.max(1) as f64;
            }
        }
        let row = [
            n.to_string(),
            (2 * pairs).to_string(),
            gaps.to_string(),
            max_gap.to_string(),
            format!("{:.4}", rel_sum / (2 * pairs) as f64),
        ];
        println!("{}", table_row(&row, &widths));
    }
    println!("\nA zero (or near-zero) gap column means Algorithm 2's sign trick is a");
    println!("safe approximation on realistic inputs; any nonzero entries quantify");
    println!("the price of dropping the second DP state.");

    println!("\n-- exhaustive search over ALL valid BE-strings (classes A, B) --");
    for len in 3..=7usize {
        let (pairs, max_gap, witness) = exhaustive_gap(len);
        match witness {
            None => println!("length {len}: {pairs} pairs, max gap 0"),
            Some((a, b)) => {
                println!("length {len}: {pairs} pairs, MAX GAP {max_gap}");
                println!("  witness: ({a}) vs ({b})");
            }
        }
    }

    // Tie-heavy strings: intervals on a tiny coordinate domain force the
    // coincident-boundary groups that realistic scenes rarely produce.
    println!("\n-- tie-heavy random strings (coordinate domain 0..6) --");
    struct Lcg(u64);
    impl Lcg {
        fn below(&mut self, bound: u64) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 33) % bound
        }
    }
    fn make_string(rng: &mut Lcg, classes: &[ObjectClass], n_objects: usize) -> BeString {
        use be2d_core::{AnnotatedBeString, Boundary, BoundaryEvent};
        let mut events = Vec::new();
        for _ in 0..n_objects {
            let b = rng.below(6) as i64;
            let e = (b + 1 + rng.below(6).min(5) as i64).min(7);
            let class = classes[rng.below(classes.len() as u64) as usize].clone();
            events.push(BoundaryEvent::new(b, class.clone(), Boundary::Begin));
            events.push(BoundaryEvent::new(e, class, Boundary::End));
        }
        AnnotatedBeString::from_events(events, 7)
            .expect("valid events")
            .to_be_string()
    }
    let classes = [
        ObjectClass::new("A"),
        ObjectClass::new("B"),
        ObjectClass::new("C"),
    ];
    let mut rng = Lcg(0x5deece66d);
    let mut worst = 0usize;
    let mut pairs = 0usize;
    for _ in 0..3000 {
        let n_a = 1 + rng.below(5) as usize;
        let n_b = 1 + rng.below(5) as usize;
        let a = make_string(&mut rng, &classes, n_a);
        let b = make_string(&mut rng, &classes, n_b);
        let gap = exact_constrained_lcs_length(&a, &b) - be_lcs_length(&a, &b);
        worst = worst.max(gap);
        pairs += 1;
    }
    println!("{pairs} tie-heavy pairs, max gap {worst}");
}
