//! E15 — two-stage retrieval economics: what the admissible score bound
//! buys at stage 1 and what the exact §3 re-rank still costs.
//!
//! Over a seeded corpus, a battery of corpus-derived queries runs twice
//! at each corpus size — exhaustive (every candidate exactly scored)
//! and two-stage (candidates ranked by the admissible [`ScoreBound`],
//! only a frontier exactly scored, early exit once the k-th exact score
//! dominates every remaining bound). The experiment reports, per corpus
//! size:
//!
//! 1. **Exact-scoring reduction.** `SearchStats` totals: candidates,
//!    exactly-scored survivors, and bound-pruned candidates, plus the
//!    scored fraction — the work stage 1 deleted.
//! 2. **Latency.** Per-query p50/p95 for both modes and the speedup.
//! 3. **Equivalence.** Every staged ranking is asserted bit-identical
//!    (`f64::to_bits`) to its exhaustive twin before being counted —
//!    a benchmark run that breaks admissibility fails loudly.
//!
//! Writes `BENCH_twostage.json`:
//!
//! ```json
//! {"benchmark":"twostage","frontier":32,"top_k":10,"sweep":[
//!  {"images":500,"candidates":...,"scored":...,"bound_pruned":...,
//!   "scored_fraction":...,"exhaustive_p50_us":...,"staged_p50_us":...,
//!   "speedup_p50":...}]}
//! ```
//!
//! [`ScoreBound`]: be2d_db::ScoreBound

use be2d_bench::standard_config;
use be2d_db::{ImageDatabase, QueryOptions, SearchStats};
use be2d_workload::metrics::percentile;
use be2d_workload::{Corpus, CorpusConfig, SceneConfig};
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

#[derive(Debug, Clone)]
struct Config {
    /// Largest corpus in the sweep (smaller points are fractions of it).
    images: usize,
    /// Queries per corpus size (drawn evenly from the corpus).
    queries: usize,
    /// Stage-2 frontier batch size.
    frontier: usize,
    /// Result size requested per query.
    top_k: usize,
    out: String,
}

impl Config {
    fn full() -> Config {
        Config {
            images: 2000,
            queries: 24,
            frontier: 32,
            top_k: 10,
            out: "BENCH_twostage.json".into(),
        }
    }

    /// CI-sized preset: same shape, a fraction of the wall clock.
    fn small() -> Config {
        Config {
            images: 600,
            queries: 12,
            ..Config::full()
        }
    }
}

fn usage() -> &'static str {
    "exp_twostage — price two-stage retrieval: exact-scoring reduction and latency vs corpus size\n\
     \n\
     options:\n\
       --preset small|full  workload size (default full; CI uses small)\n\
       --images N           largest corpus in the sweep\n\
       --queries N          queries per corpus size\n\
       --frontier N         stage-2 frontier batch size\n\
       --top-k N            result size requested per query\n\
       --out PATH           JSON report path (default BENCH_twostage.json)\n\
       --help               this text\n"
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut overrides: Vec<(String, String)> = Vec::new();
    let mut config = Config::full();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        if flag == "--preset" {
            config = match value.as_str() {
                "small" => Config::small(),
                "full" => Config::full(),
                other => return Err(format!("unknown preset {other:?} (small | full)")),
            };
        } else {
            overrides.push((flag.clone(), value.clone()));
        }
    }
    for (flag, value) in overrides {
        let parsed = value.parse::<usize>();
        match flag.as_str() {
            "--images" => config.images = parsed.map_err(|_| "--images must be a number")?,
            "--queries" => config.queries = parsed.map_err(|_| "--queries must be a number")?,
            "--frontier" => config.frontier = parsed.map_err(|_| "--frontier must be a number")?,
            "--top-k" => config.top_k = parsed.map_err(|_| "--top-k must be a number")?,
            "--out" => config.out = value,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if config.images == 0 || config.queries == 0 || config.frontier == 0 {
        return Err("--images, --queries and --frontier must be at least 1".into());
    }
    Ok(config)
}

#[derive(Debug, Default)]
struct ModeTotals {
    stats: SearchStats,
    latencies_us: Vec<f64>,
}

/// One corpus-size measurement: both modes over the query battery, with
/// every staged ranking asserted bit-identical to its exhaustive twin.
fn measure(config: &Config, corpus: &Corpus, images: usize) -> (ModeTotals, ModeTotals) {
    let mut db = ImageDatabase::new();
    let mut queries = Vec::new();
    for (i, (id, scene)) in corpus.iter().enumerate().take(images) {
        db.insert_scene(&id.to_string(), scene).expect("insert");
        if queries.len() < config.queries && i % images.div_ceil(config.queries) == 0 {
            queries.push(be2d_core::SymbolicImage::from_scene(scene).to_be_string_2d());
        }
    }
    let exhaustive_options = QueryOptions {
        top_k: Some(config.top_k),
        ..QueryOptions::default()
    };
    let staged_options = exhaustive_options.clone().with_two_stage(config.frontier);

    let mut exhaustive = ModeTotals::default();
    let mut staged = ModeTotals::default();
    for query in &queries {
        let t0 = Instant::now();
        let (expect, stats) = db.search_bounded(query, &exhaustive_options, None);
        exhaustive
            .latencies_us
            .push(t0.elapsed().as_secs_f64() * 1e6);
        exhaustive.stats.candidates += stats.candidates;
        exhaustive.stats.scored += stats.scored;
        exhaustive.stats.bound_pruned += stats.bound_pruned;

        let t0 = Instant::now();
        let (hits, stats) = db.search_bounded(query, &staged_options, None);
        staged.latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
        staged.stats.candidates += stats.candidates;
        staged.stats.scored += stats.scored;
        staged.stats.bound_pruned += stats.bound_pruned;

        assert_eq!(
            expect.len(),
            hits.len(),
            "two-stage changed the result size"
        );
        for (a, b) in expect.iter().zip(&hits) {
            assert!(
                a.id == b.id && a.score.to_bits() == b.score.to_bits(),
                "two-stage broke bit-identity at {images} images"
            );
        }
    }
    exhaustive.latencies_us.sort_by(f64::total_cmp);
    staged.latencies_us.sort_by(f64::total_cmp);
    (exhaustive, staged)
}

#[allow(clippy::cast_precision_loss)]
fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) if message.is_empty() => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    println!("=== E15: two-stage retrieval (scoring reduction, latency) ===\n");
    println!(
        "corpus up to {} images, {} queries per size, frontier {}, top-{}\n",
        config.images, config.queries, config.frontier, config.top_k
    );
    let corpus = Corpus::generate(
        &CorpusConfig {
            images: config.images,
            scene: SceneConfig {
                objects: 8,
                ..standard_config(8)
            },
        },
        7,
    );

    let sizes = [
        (config.images / 4).max(1),
        (config.images / 2).max(1),
        config.images,
    ];
    let mut rows = Vec::new();
    println!(
        "{:>8} {:>12} {:>10} {:>8} {:>14} {:>12} {:>8}",
        "images", "candidates", "scored", "frac", "exhaustive p50", "staged p50", "speedup"
    );
    for images in sizes {
        let (exhaustive, staged) = measure(&config, &corpus, images);
        let scored_fraction =
            staged.stats.scored as f64 / (staged.stats.candidates as f64).max(1.0);
        let ex_p50 = percentile(&exhaustive.latencies_us, 50.0);
        let ex_p95 = percentile(&exhaustive.latencies_us, 95.0);
        let st_p50 = percentile(&staged.latencies_us, 50.0);
        let st_p95 = percentile(&staged.latencies_us, 95.0);
        let speedup = if st_p50 > 0.0 { ex_p50 / st_p50 } else { 0.0 };
        println!(
            "{:>8} {:>12} {:>10} {:>8.3} {:>12.1}us {:>10.1}us {:>7.2}x",
            images,
            staged.stats.candidates,
            staged.stats.scored,
            scored_fraction,
            ex_p50,
            st_p50,
            speedup
        );
        rows.push(format!(
            r#"{{"images":{images},"candidates":{},"scored":{},"bound_pruned":{},"scored_fraction":{scored_fraction:.4},"exhaustive_p50_us":{ex_p50:.3},"exhaustive_p95_us":{ex_p95:.3},"staged_p50_us":{st_p50:.3},"staged_p95_us":{st_p95:.3},"speedup_p50":{speedup:.4}}}"#,
            staged.stats.candidates, staged.stats.scored, staged.stats.bound_pruned
        ));
    }

    let json = format!(
        r#"{{"benchmark":"twostage","images":{},"queries":{},"frontier":{},"top_k":{},"sweep":[{}]}}"#,
        config.images,
        config.queries,
        config.frontier,
        config.top_k,
        rows.join(",")
    );
    let write = std::fs::File::create(&config.out).and_then(|mut f| f.write_all(json.as_bytes()));
    match write {
        Ok(()) => {
            println!("\nreport written to {}", config.out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", config.out);
            ExitCode::FAILURE
        }
    }
}
