//! E2 — storage cost table (§3.1 bounds + §2 cutting blow-up).
//!
//! For each n, reports per-axis (x) symbol/segment counts:
//! BE-string best/average/worst case, 2-D string, 2D B-string, and the
//! G-/C-string cutting models on random and adversarial scenes.
//!
//! Paper claims regenerated: BE ∈ [2n+1, 4n+1] (O(n)); G-string O(n²)
//! worst case; C-string ≤ G-string but still superlinear on adversarial
//! input.

use be2d_bench::{
    best_case_scene, overlap_pile_scene, standard_config, table_row, worst_case_scene,
};
use be2d_core::convert_scene;
use be2d_strings2d::{BString, CString, GString, TwoDString};
use be2d_workload::scene_from_seed;

fn main() {
    println!("=== E2: storage units per model (x-axis; averages over 10 seeds) ===\n");
    let widths = [5, 7, 8, 8, 8, 7, 9, 9, 9, 9];
    let header = [
        "n", "BE-min", "BE-avg", "BE-max", "4n+1", "2-D", "B-str", "G-rand", "G-pile", "C-pile",
    ];
    println!("{}", table_row(&header.map(String::from), &widths));

    for n in [2usize, 4, 8, 16, 32, 64, 128, 256, 512] {
        let mut be_sum = 0usize;
        let mut g_sum = 0usize;
        let mut b_sum = 0usize;
        let mut two_d_sum = 0usize;
        let seeds = 10u64;
        for seed in 0..seeds {
            let scene = scene_from_seed(&standard_config(n), seed * 31 + n as u64);
            be_sum += convert_scene(&scene).x().len();
            g_sum += GString::from_scene(&scene).x().len();
            b_sum += BString::from_scene(&scene).symbol_count() / 2;
            two_d_sum += TwoDString::from_scene(&scene).symbol_count() / 2;
        }
        let be_best = convert_scene(&best_case_scene(n)).x().len();
        let be_worst = convert_scene(&worst_case_scene(n)).x().len();
        let pile = overlap_pile_scene(n);
        let g_pile = GString::from_scene(&pile).x().len();
        let c_pile = CString::from_scene(&pile).x().len();

        let row = [
            n.to_string(),
            be_best.to_string(),
            format!("{:.0}", be_sum as f64 / seeds as f64),
            be_worst.to_string(),
            (4 * n + 1).to_string(),
            (two_d_sum / seeds as usize).to_string(),
            (b_sum / seeds as usize).to_string(),
            (g_sum / seeds as usize).to_string(),
            g_pile.to_string(),
            c_pile.to_string(),
        ];
        println!("{}", table_row(&row, &widths));

        assert_eq!(be_best, 2 * n + 1, "§3.1 best case");
        assert_eq!(be_worst, 4 * n + 1, "§3.1 worst case");
        assert!(g_pile >= n * n, "G-string worst case is quadratic");
    }
    println!("\nBE-string stays within [2n+1, 4n+1] everywhere; the G-string pile");
    println!("column grows quadratically, the C-string cuts strictly less.");
}
