//! E1 — the Figure 1 worked example of §3.1.
//!
//! Regenerates the paper's example 2D BE-string from the three-object
//! image and checks it symbol for symbol.

use be2d_core::convert_scene;
use be2d_geometry::SceneBuilder;
use be2d_imaging::scene_ascii;

fn main() {
    println!("=== E1: Figure 1 worked example (paper §3.1) ===\n");
    let scene = SceneBuilder::new(100, 100)
        .object("A", (10, 50, 25, 85))
        .object("B", (30, 90, 5, 45))
        .object("C", (50, 70, 45, 65))
        .build()
        .expect("figure 1 scene");

    // Coarse preview (1 character per 4x4 block).
    let coarse = {
        let art = scene_ascii(&scene);
        let lines: Vec<&str> = art.lines().collect();
        let mut out = String::new();
        for row in lines.iter().step_by(4) {
            for (i, ch) in row.chars().enumerate() {
                if i % 4 == 0 {
                    out.push(ch);
                }
            }
            out.push('\n');
        }
        out
    };
    println!("{coarse}");

    let s = convert_scene(&scene);
    println!("u (x-axis) = {}", s.x());
    println!("v (y-axis) = {}", s.y());

    let expect_u = "E A_b E B_b E A_e C_b E C_e E B_e E";
    let expect_v = "E B_b E A_b E B_e C_b E C_e E A_e E";
    assert_eq!(s.x().to_string(), expect_u);
    assert_eq!(s.y().to_string(), expect_v);
    println!("\npaper string  = ({expect_u}, {expect_v})");
    println!("reproduction  = MATCH");
    println!(
        "storage: {} + {} symbols (n=3: bounds are 2n+1=7 .. 4n+1=13 per axis)",
        s.x().len(),
        s.y().len()
    );
}
