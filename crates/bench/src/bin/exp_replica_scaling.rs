//! E12 — replica-scaling sweep: read-dominant mixed throughput of the
//! [`ReplicatedImageDatabase`] across replica counts *and* replication
//! modes: sync at replicas ∈ {1, 2, 3}, then quorum and async at 3.
//!
//! Each configuration runs the same closed-loop workload over a fixed
//! shard count: `readers` threads issue ranked searches back-to-back
//! while `writers` threads continuously insert (and periodically
//! remove) records. With one replica every write gates that shard's
//! only copy; with R replicas the round-robin read picker lands `R-1`
//! of every shard's read traffic on copies the current write is not
//! holding, so read latency under write load flattens as replicas are
//! added — the read-scaling the replication layer exists for. Writes
//! get *more* expensive with R under sync fan-out, which is exactly
//! what the mode sweep prices: quorum acks at a majority and async at
//! the leader alone (followers drain off the write path), so their
//! `writes/s` at R=3 recovers (part of) the R=1 write cost.
//!
//! Writes `BENCH_replica_scaling.json`:
//!
//! ```json
//! {"benchmark":"replica_scaling","shards":2,"host_threads":4,
//!  "sweep":[{"replicas":1,"mode":"sync","throughput_qps":...}, ...],
//!  "speedup_3_vs_1":1.4,"async_write_speedup_vs_sync":1.3}
//! ```
//!
//! On a single-core host the sweep degenerates to ≈1× by construction;
//! the JSON records `host_threads` so downstream tooling can interpret
//! the numbers honestly.

use be2d_bench::standard_config;
use be2d_db::{
    Parallelism, PlannerMode, QueryOptions, ReplicaConfig, ReplicatedImageDatabase, ReplicationMode,
};
use be2d_workload::metrics::percentile;
use be2d_workload::{derive_queries, Corpus, CorpusConfig, QueryKind, SceneConfig};
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct Config {
    images: usize,
    duration: Duration,
    shards: usize,
    readers: usize,
    writers: usize,
    /// Pause between one writer's insert+remove pairs: writes are a
    /// steady paced trickle (the serving shape), not an unthrottled
    /// flood that would starve the searches being measured.
    write_pause: Duration,
    out: String,
    points: Vec<(usize, ReplicationMode)>,
}

impl Config {
    fn full() -> Config {
        Config {
            images: 1200,
            duration: Duration::from_millis(2500),
            shards: 2,
            readers: host_threads().min(4),
            writers: 2,
            write_pause: Duration::from_millis(1),
            out: "BENCH_replica_scaling.json".into(),
            points: vec![
                (1, ReplicationMode::Sync),
                (2, ReplicationMode::Sync),
                (3, ReplicationMode::Sync),
                (3, ReplicationMode::Quorum),
                (3, ReplicationMode::Async { max_lag: 1024 }),
            ],
        }
    }

    /// CI-sized preset: same shape, a fraction of the wall clock.
    fn small() -> Config {
        Config {
            images: 500,
            duration: Duration::from_millis(1500),
            ..Config::full()
        }
    }
}

fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |c| c.get())
}

fn usage() -> &'static str {
    "exp_replica_scaling — sweep ReplicatedImageDatabase over replicas {1,2,3}\n\
     \n\
     options:\n\
       --preset small|full  workload size (default full; CI uses small)\n\
       --images N           corpus size per configuration\n\
       --duration-ms D      timed window per configuration\n\
       --shards N           fixed shard count under the sweep (default 2)\n\
       --readers N          searcher threads (default min(4, host threads))\n\
       --writers N          insert/remove threads (default 2)\n\
       --out PATH           JSON report path (default BENCH_replica_scaling.json)\n\
       --help               this text\n"
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    // The preset picks the base configuration; every other flag is an
    // override applied afterwards, so flag order never matters.
    let mut overrides: Vec<(String, String)> = Vec::new();
    let mut config = Config::full();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        if flag == "--preset" {
            config = match value.as_str() {
                "small" => Config::small(),
                "full" => Config::full(),
                other => return Err(format!("unknown preset {other:?} (small | full)")),
            };
        } else {
            overrides.push((flag.clone(), value.clone()));
        }
    }
    for (flag, value) in overrides {
        match flag.as_str() {
            "--images" => {
                config.images = value
                    .parse()
                    .map_err(|_| "--images must be a number".to_owned())?;
            }
            "--duration-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| "--duration-ms must be a number".to_owned())?;
                config.duration = Duration::from_millis(ms);
            }
            "--shards" => {
                config.shards = value
                    .parse()
                    .map_err(|_| "--shards must be a number".to_owned())?;
            }
            "--readers" => {
                config.readers = value
                    .parse()
                    .map_err(|_| "--readers must be a number".to_owned())?;
            }
            "--writers" => {
                config.writers = value
                    .parse()
                    .map_err(|_| "--writers must be a number".to_owned())?;
            }
            "--out" => config.out = value,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if config.readers == 0 {
        return Err("--readers must be at least 1".into());
    }
    if config.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(config)
}

struct SweepPoint {
    replicas: usize,
    mode: &'static str,
    searches: u64,
    writes: u64,
    throughput_qps: f64,
    writes_per_s: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// One timed read-dominant run against a fresh database.
#[allow(clippy::cast_precision_loss)]
fn run_point(
    config: &Config,
    corpus: &Corpus,
    replicas: usize,
    mode: ReplicationMode,
) -> SweepPoint {
    let db = ReplicatedImageDatabase::with_config(ReplicaConfig {
        shards: config.shards,
        replicas,
        mode,
        oplog_window: 4096,
        planner: PlannerMode::default(),
        wal: None,
    })
    .expect("in-memory topology always opens");
    for (id, scene) in corpus.iter() {
        db.insert_scene(&id.to_string(), scene)
            .expect("prefill insert");
    }
    let queries = derive_queries(corpus, &[QueryKind::DropObjects { keep: 4 }], 24, 11);
    // Per-shard scoring stays serial: the only parallelism under test is
    // reader concurrency across replicas plus the cross-shard scatter.
    let options = QueryOptions {
        top_k: Some(10),
        parallel: Parallelism::Off,
        ..QueryOptions::serving()
    };

    // Warm-up outside the timed window.
    for query in queries.iter().take(4) {
        std::hint::black_box(db.search_scene(&query.scene, &options).expect("search"));
    }

    let scenes: Vec<_> = corpus.iter().map(|(_, scene)| scene).collect();
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let (latencies, writes) = std::thread::scope(|scope| {
        let reader_handles: Vec<_> = (0..config.readers)
            .map(|reader| {
                let db = db.clone();
                let queries = &queries;
                let options = &options;
                let stop = &stop;
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    let mut i = reader;
                    while !stop.load(Ordering::Relaxed) {
                        let query = &queries[i % queries.len()];
                        let t0 = Instant::now();
                        std::hint::black_box(
                            db.search_scene(&query.scene, options).expect("search"),
                        );
                        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                        i += 1;
                    }
                    latencies
                })
            })
            .collect();
        let writer_handles: Vec<_> = (0..config.writers)
            .map(|writer| {
                let db = db.clone();
                let scenes = &scenes;
                let stop = &stop;
                scope.spawn(move || {
                    let mut writes = 0u64;
                    let mut i = writer;
                    while !stop.load(Ordering::Relaxed) {
                        // Insert + remove keeps the database size stable,
                        // so every sweep point searches the same corpus.
                        let scene = scenes[i % scenes.len()];
                        let id = db
                            .insert_scene(&format!("w{writer}-{i}"), scene)
                            .expect("insert");
                        db.remove(id).expect("remove own insert");
                        writes += 2;
                        i += 1;
                        std::thread::sleep(config.write_pause);
                    }
                    writes
                })
            })
            .collect();

        std::thread::sleep(config.duration);
        stop.store(true, Ordering::Relaxed);

        let mut latencies: Vec<f64> = reader_handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader panicked"))
            .collect();
        latencies.sort_by(f64::total_cmp);
        let writes: u64 = writer_handles
            .into_iter()
            .map(|h| h.join().expect("writer panicked"))
            .sum();
        (latencies, writes)
    });
    // Async acks at the leader: drain the followers before calling the
    // run done, so the timed window never hides unfinished work beyond
    // its own boundary.
    db.flush_replication();
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);

    SweepPoint {
        replicas,
        mode: mode.name(),
        searches: latencies.len() as u64,
        writes,
        throughput_qps: latencies.len() as f64 / elapsed,
        writes_per_s: writes as f64 / elapsed,
        p50_ms: percentile(&latencies, 50.0),
        p95_ms: percentile(&latencies, 95.0),
        p99_ms: percentile(&latencies, 99.0),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) if message.is_empty() => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    println!("=== E12: replica scaling (read fan-out vs write fan-out) ===\n");
    println!(
        "corpus {} images over {} shards, {} readers + {} writers, {:.1}s per point, host threads: {}\n",
        config.images,
        config.shards,
        config.readers,
        config.writers,
        config.duration.as_secs_f64(),
        host_threads()
    );

    let corpus = Corpus::generate(
        &CorpusConfig {
            images: config.images,
            scene: SceneConfig {
                objects: 8,
                ..standard_config(8)
            },
        },
        3,
    );

    println!(
        "{:>8}  {:>7}  {:>10}  {:>12}  {:>9}  {:>9}  {:>9}  {:>10}",
        "replicas", "mode", "searches", "queries/s", "p50 ms", "p95 ms", "p99 ms", "writes/s"
    );
    let mut sweep = Vec::new();
    for &(replicas, mode) in &config.points {
        let point = run_point(&config, &corpus, replicas, mode);
        println!(
            "{:>8}  {:>7}  {:>10}  {:>12.1}  {:>9.2}  {:>9.2}  {:>9.2}  {:>10.1}",
            point.replicas,
            point.mode,
            point.searches,
            point.throughput_qps,
            point.p50_ms,
            point.p95_ms,
            point.p99_ms,
            point.writes_per_s
        );
        sweep.push(point);
    }

    let sync_at = |replicas: usize| {
        sweep
            .iter()
            .find(|p| p.replicas == replicas && p.mode == "sync")
    };
    let mode_at_3 = |mode: &str| sweep.iter().find(|p| p.replicas == 3 && p.mode == mode);
    let speedup = match (sync_at(1), sync_at(3)) {
        (Some(one), Some(three)) if one.throughput_qps > 0.0 => {
            three.throughput_qps / one.throughput_qps
        }
        _ => 0.0,
    };
    let write_speedup = |mode: &str| match (sync_at(3), mode_at_3(mode)) {
        (Some(sync), Some(point)) if sync.writes_per_s > 0.0 => {
            point.writes_per_s / sync.writes_per_s
        }
        _ => 0.0,
    };
    let quorum_write_speedup = write_speedup("quorum");
    let async_write_speedup = write_speedup("async");
    println!("\n3-replica vs 1-replica query throughput (sync): {speedup:.2}x");
    println!(
        "R=3 write throughput vs sync: quorum {quorum_write_speedup:.2}x, async {async_write_speedup:.2}x"
    );
    if host_threads() == 1 {
        println!("(single-core host: replica fan-out cannot beat serial work here; run on a multi-core host for the real scaling curve)");
    }

    let rows: Vec<String> = sweep
        .iter()
        .map(|p| {
            format!(
                r#"{{"replicas":{},"mode":{:?},"searches":{},"writes":{},"throughput_qps":{:.3},"writes_per_s":{:.3},"p50_ms":{:.4},"p95_ms":{:.4},"p99_ms":{:.4}}}"#,
                p.replicas,
                p.mode,
                p.searches,
                p.writes,
                p.throughput_qps,
                p.writes_per_s,
                p.p50_ms,
                p.p95_ms,
                p.p99_ms
            )
        })
        .collect();
    let json = format!(
        r#"{{"benchmark":"replica_scaling","images":{},"shards":{},"readers":{},"writers":{},"duration_s":{:.3},"host_threads":{},"speedup_3_vs_1":{:.4},"quorum_write_speedup_vs_sync":{:.4},"async_write_speedup_vs_sync":{:.4},"sweep":[{}]}}"#,
        config.images,
        config.shards,
        config.readers,
        config.writers,
        config.duration.as_secs_f64(),
        host_threads(),
        speedup,
        quorum_write_speedup,
        async_write_speedup,
        rows.join(",")
    );
    let write = std::fs::File::create(&config.out).and_then(|mut f| f.write_all(json.as_bytes()));
    match write {
        Ok(()) => {
            println!("report written to {}", config.out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", config.out);
            ExitCode::FAILURE
        }
    }
}
