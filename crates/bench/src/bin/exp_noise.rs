//! E9 — retrieval robustness under recognition noise.
//!
//! The paper assumes a perfect segmentation front end. This experiment
//! injects the classic fault classes — salt-and-pepper pixel noise and
//! boundary erosion — into rendered corpus images, re-recognises the
//! objects, and queries the clean-index database with the *noisy*
//! recognitions. The graded LCS similarity should degrade gracefully
//! where an exact-match scheme would fall off a cliff.

use be2d_bench::table_row;
use be2d_db::{ImageDatabase, QueryOptions};
use be2d_imaging::{
    erode_boundaries, extract_scene, render_scene, salt_and_pepper, ClassPalette, NoiseRng, Shape,
};
use be2d_workload::metrics::{mean, reciprocal_rank};
use be2d_workload::{Corpus, CorpusConfig, ImageId, Placement, SceneConfig};
use std::collections::HashSet;

fn main() {
    println!("=== E9: retrieval under recognition noise (120-image corpus) ===\n");
    let corpus = Corpus::generate(
        &CorpusConfig {
            images: 120,
            scene: SceneConfig {
                width: 96,
                height: 96,
                objects: 5,
                classes: 4,
                min_size: 8,
                max_size: 24,
                placement: Placement::NonOverlapping,
            },
        },
        31,
    );
    let mut db = ImageDatabase::new();
    for (id, scene) in corpus.iter() {
        db.insert_scene(&id.to_string(), scene).expect("insert");
    }

    let widths = [24, 10, 12, 12, 12];
    let header = ["fault level", "queries", "MRR", "top-1", "objects kept"];
    println!("{}", table_row(&header.map(String::from), &widths));

    // (label, salt/pepper p, erosion rounds, whole-object dropout p)
    for (label, p_saltpepper, erode_rounds, p_dropout) in [
        ("clean", 0.0, 0usize, 0.0),
        ("mild (jitter 1-2px)", 0.002, 2, 0.0),
        ("moderate (+dropout .15)", 0.005, 3, 0.15),
        ("heavy (+dropout .3)", 0.010, 5, 0.30),
        ("severe (+dropout .5)", 0.020, 8, 0.50),
    ] {
        let mut rrs = Vec::new();
        let mut top1 = 0usize;
        let mut kept_ratio = Vec::new();
        let queries = 30usize;
        for qi in 0..queries {
            let source = ImageId((qi * 7 + 1) % corpus.len());
            let scene = corpus.scene(source).expect("scene");

            // render, corrupt, re-recognise
            let mut palette = ClassPalette::new();
            let mut raster = render_scene(scene, &mut palette, Shape::Rectangle);
            let mut rng = NoiseRng::new(1000 + qi as u64);
            // whole-object dropout: the recogniser misses some objects
            for obj in scene {
                if rng.chance(p_dropout) {
                    let m = obj.mbr();
                    raster
                        .fill_rect(
                            m.x_begin() as usize,
                            m.x_end() as usize,
                            m.y_begin() as usize,
                            m.y_end() as usize,
                            0,
                        )
                        .expect("in frame");
                }
            }
            salt_and_pepper(&mut raster, p_saltpepper, palette.len() as u32, &mut rng);
            for _ in 0..erode_rounds {
                erode_boundaries(&mut raster, 0.7, &mut rng);
            }
            let noisy = extract_scene(&raster, &palette, 6).expect("extraction");
            kept_ratio.push(noisy.len() as f64 / scene.len() as f64);

            let hits = db.search_scene(&noisy, &QueryOptions::default().with_top_k(None));
            let ranked: Vec<ImageId> = hits.iter().map(|h| ImageId(h.id.index())).collect();
            let relevant: HashSet<ImageId> = [source].into_iter().collect();
            rrs.push(reciprocal_rank(&ranked, &relevant));
            top1 += usize::from(ranked.first() == Some(&source));
        }
        let row = [
            label.to_string(),
            queries.to_string(),
            format!("{:.3}", mean(&rrs)),
            format!("{}/{}", top1, queries),
            format!("{:.2}", mean(&kept_ratio)),
        ];
        println!("{}", table_row(&row, &widths));
    }
    println!("\nRecognition faults shrink MBRs, split objects and spawn speckles; the");
    println!("min-area filter plus the graded LCS keep retrieval useful well past the");
    println!("point where every exact relation has been perturbed.");
}
