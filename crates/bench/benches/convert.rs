//! E8 — Algorithm 1 construction cost: O(n log n) time, O(n) space.

use be2d_bench::standard_config;
use be2d_core::convert_scene;
use be2d_workload::scene_from_seed;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

fn bench_convert(c: &mut Criterion) {
    let mut group = c.benchmark_group("convert_scene");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for n in [16usize, 64, 256, 1024, 4096, 16384] {
        let scene = scene_from_seed(&standard_config(n), n as u64);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &scene, |b, scene| {
            b.iter(|| black_box(convert_scene(black_box(scene))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convert);
criterion_main!(benches);
