//! E7 — end-to-end database query latency across corpus sizes and
//! option presets.

use be2d_db::{ImageDatabase, PrefilterMode, QueryOptions};
use be2d_workload::{derive_queries, Corpus, CorpusConfig, QueryKind, SceneConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn build(images: usize) -> (ImageDatabase, Vec<be2d_workload::Query>) {
    let corpus = Corpus::generate(
        &CorpusConfig {
            images,
            scene: SceneConfig {
                objects: 8,
                classes: 12,
                ..SceneConfig::default()
            },
        },
        3,
    );
    let mut db = ImageDatabase::new();
    for (id, scene) in corpus.iter() {
        db.insert_scene(&id.to_string(), scene).expect("insert");
    }
    let queries = derive_queries(&corpus, &[QueryKind::DropObjects { keep: 4 }], 3, 11);
    (db, queries)
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("db_search");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for images in [100usize, 1_000, 5_000] {
        let (db, queries) = build(images);
        for (label, prefilter, parallel) in [
            ("serial-nofilter", PrefilterMode::None, false),
            ("serial-anyclass", PrefilterMode::AnyClass, false),
            ("parallel-anyclass", PrefilterMode::AnyClass, true),
        ] {
            let options = QueryOptions {
                prefilter,
                parallel: parallel.into(),
                top_k: Some(10),
                ..QueryOptions::default()
            };
            group.bench_with_input(
                BenchmarkId::new(label, images),
                &(&db, &queries, options),
                |b, (db, queries, options)| {
                    b.iter(|| {
                        for q in queries.iter() {
                            black_box(db.search_scene(black_box(&q.scene), options));
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
