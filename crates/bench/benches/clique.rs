//! E3b — the type-i clique baseline's cost (NP-complete, small n only).

use be2d_bench::standard_config;
use be2d_strings2d::{typed_similarity, SimilarityType};
use be2d_workload::scene_from_seed;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_clique(c: &mut Criterion) {
    let mut group = c.benchmark_group("typed_clique");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    for ty in [
        SimilarityType::Type2,
        SimilarityType::Type1,
        SimilarityType::Type0,
    ] {
        for n in [4usize, 8, 12, 16, 20] {
            let q = scene_from_seed(&standard_config(n), 1000 + n as u64);
            let d = scene_from_seed(&standard_config(n), 2000 + n as u64);
            group.bench_with_input(BenchmarkId::new(ty.to_string(), n), &(q, d), |b, (q, d)| {
                b.iter(|| black_box(typed_similarity(black_box(q), black_box(d), ty).matched));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_clique);
criterion_main!(benches);
