//! E3a — modified LCS cost over the (m, n) grid: the paper's O(mn).

use be2d_bench::standard_config;
use be2d_core::{be_lcs_length, convert_scene, BeString2D};
use be2d_workload::scene_from_seed;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

fn strings(n: usize, seed: u64) -> BeString2D {
    convert_scene(&scene_from_seed(&standard_config(n), seed))
}

fn bench_lcs_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("lcs_m_equals_n");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for n in [8usize, 16, 32, 64, 128, 256, 512] {
        let q = strings(n, 10 + n as u64);
        let d = strings(n, 20 + n as u64);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &(q, d), |b, (q, d)| {
            b.iter(|| {
                black_box(
                    be_lcs_length(black_box(q.x()), black_box(d.x()))
                        + be_lcs_length(black_box(q.y()), black_box(d.y())),
                )
            });
        });
    }
    group.finish();
}

fn bench_lcs_fixed_query(c: &mut Criterion) {
    // m fixed (query sketch), n growing (database image): linear in n
    let mut group = c.benchmark_group("lcs_fixed_query_m8");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200));
    let q = strings(8, 5);
    for n in [8usize, 32, 128, 512] {
        let d = strings(n, 30 + n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &d, |b, d| {
            b.iter(|| {
                black_box(
                    be_lcs_length(black_box(q.x()), black_box(d.x()))
                        + be_lcs_length(black_box(q.y()), black_box(d.y())),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lcs_square, bench_lcs_fixed_query);
criterion_main!(benches);
