//! E6 — incremental object insertion vs full reconversion (§3.2).

use be2d_bench::standard_config;
use be2d_core::SymbolicImage;
use be2d_geometry::{ObjectClass, Rect};
use be2d_workload::scene_from_seed;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_edit(c: &mut Criterion) {
    let mut group = c.benchmark_group("object_insert");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    let class = ObjectClass::new("Znew");
    let mbr = Rect::new(501, 777, 123, 456).expect("rect");
    for n in [16usize, 128, 1024, 4096] {
        let scene = scene_from_seed(&standard_config(n), n as u64);
        let base = SymbolicImage::from_scene(&scene);
        group.bench_with_input(BenchmarkId::new("incremental", n), &base, |b, base| {
            b.iter_batched(
                || base.clone(),
                |mut img| {
                    img.add_object(&class, mbr).expect("fits");
                    black_box(img)
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("reconvert", n), &scene, |b, scene| {
            b.iter_batched(
                || scene.clone(),
                |mut s| {
                    s.add(class.clone(), mbr).expect("fits");
                    black_box(SymbolicImage::from_scene(&s))
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_edit);
criterion_main!(benches);
