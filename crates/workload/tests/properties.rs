//! Property tests for workload generation and metrics.

use be2d_workload::metrics::{average_precision, precision_at_k, recall_at_k, reciprocal_rank};
use be2d_workload::{
    derive_query, scene_from_seed, Corpus, CorpusConfig, ImageId, Placement, QueryKind, SceneConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn arb_config() -> impl Strategy<Value = SceneConfig> {
    (1usize..12, 1usize..6, 0usize..3).prop_map(|(objects, classes, placement)| SceneConfig {
        width: 128,
        height: 128,
        objects,
        classes,
        min_size: 4,
        max_size: 32,
        placement: match placement {
            0 => Placement::Uniform,
            1 => Placement::NonOverlapping,
            _ => Placement::Clustered { clusters: 3 },
        },
    })
}

proptest! {
    /// Generated scenes respect their configuration and are valid.
    #[test]
    fn generated_scenes_valid(cfg in arb_config(), seed in any::<u64>()) {
        let scene = scene_from_seed(&cfg, seed);
        prop_assert_eq!(scene.len(), cfg.objects);
        for o in &scene {
            let m = o.mbr();
            prop_assert!(m.x_begin() >= 0 && m.x_end() <= cfg.width);
            prop_assert!(m.y_begin() >= 0 && m.y_end() <= cfg.height);
            prop_assert!(m.width() >= cfg.min_size && m.width() <= cfg.max_size);
            prop_assert!(m.height() >= cfg.min_size && m.height() <= cfg.max_size);
        }
        // determinism
        prop_assert_eq!(scene, scene_from_seed(&cfg, seed));
    }

    /// Non-overlapping placement actually avoids overlap for sparse
    /// configurations (few small objects in a large frame).
    #[test]
    fn non_overlapping_holds_when_sparse(seed in any::<u64>()) {
        let cfg = SceneConfig {
            objects: 6,
            min_size: 4,
            max_size: 12,
            placement: Placement::NonOverlapping,
            ..SceneConfig { width: 256, height: 256, classes: 3, ..Default::default() }
        };
        let scene = scene_from_seed(&cfg, seed);
        for (i, a) in scene.iter().enumerate() {
            for b in &scene.objects()[i + 1..] {
                prop_assert!(!a.mbr().overlaps(&b.mbr()));
            }
        }
    }

    /// Derived queries keep their contracts: subsets stay subsets,
    /// jitter preserves sizes, transforms match the geometric action.
    #[test]
    fn query_contracts(seed in any::<u64>(), keep in 1usize..6, delta in 1i64..20) {
        let corpus = Corpus::generate(
            &CorpusConfig {
                images: 4,
                scene: SceneConfig { objects: 6, classes: 4, ..SceneConfig::default() },
            },
            seed,
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let src = ImageId((seed % 4) as usize);
        let source = corpus.scene(src).expect("exists");

        let q = derive_query(&corpus, src, QueryKind::DropObjects { keep }, &mut rng);
        prop_assert_eq!(q.scene.len(), keep.min(source.len()));
        for o in &q.scene {
            prop_assert!(source.iter().any(|s| s.class() == o.class() && s.mbr() == o.mbr()));
        }

        let q = derive_query(&corpus, src, QueryKind::Jitter { max_delta: delta }, &mut rng);
        prop_assert_eq!(q.scene.len(), source.len());
        for (a, b) in source.iter().zip(q.scene.iter()) {
            prop_assert_eq!(a.mbr().width(), b.mbr().width());
            prop_assert_eq!(a.mbr().height(), b.mbr().height());
            prop_assert!((a.mbr().x_begin() - b.mbr().x_begin()).abs() <= delta);
            prop_assert!((a.mbr().y_begin() - b.mbr().y_begin()).abs() <= delta);
        }
    }

    /// Metric sanity: all metrics live in [0, 1]; a perfect ranking
    /// maximises all of them; appending junk never changes AP.
    #[test]
    fn metric_contracts(ranked in prop::collection::vec(0usize..30, 0..20), k in 1usize..10) {
        let ranked: Vec<ImageId> = ranked.into_iter().map(ImageId).collect();
        let relevant: HashSet<ImageId> = ranked.iter().take(3).cloned().collect();
        for v in [
            precision_at_k(&ranked, &relevant, k),
            recall_at_k(&ranked, &relevant, k),
            reciprocal_rank(&ranked, &relevant),
            average_precision(&ranked, &relevant),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "{v}");
        }
        // a ranking that starts with the relevant item has RR = 1
        if let Some(first) = ranked.first() {
            let rel: HashSet<ImageId> = [*first].into_iter().collect();
            prop_assert_eq!(reciprocal_rank(&ranked, &rel), 1.0);
        }
    }
}
