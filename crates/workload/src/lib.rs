//! # be2d-workload — synthetic workloads with ground truth
//!
//! The paper's evaluation is a qualitative demonstration system (§5); to
//! *quantify* the claimed retrieval behaviours this crate builds seeded
//! synthetic corpora where the right answer is known by construction:
//!
//! * [`SceneConfig`] / [`generate_scene`] — randomised icon scenes
//!   (uniform, non-overlapping, or clustered placement);
//! * [`Corpus`] — a database-sized collection of scenes;
//! * [`QueryKind`] / [`derive_queries`] — queries derived from corpus
//!   images: exact copies, object subsets (partial-icon match), jittered
//!   positions (partial-relation match), D4-transformed copies, and
//!   unrelated decoys — each tagged with the image it should retrieve;
//! * [`metrics`] — precision@k, recall@k, reciprocal rank and average
//!   precision over ranked result lists;
//! * [`RequestMix`] — weighted insert/edit/search request sampling for
//!   online-serving workloads (used by the `be2d-server` load
//!   generator);
//! * [`Skew`] — hot/cold target selection, including a stride mode that
//!   aims the hot set at one shard of a sharded database.
//!
//! Everything is deterministic from a `u64` seed, so every experiment in
//! EXPERIMENTS.md regenerates bit-identically.
//!
//! # Example
//!
//! ```
//! use be2d_workload::{Corpus, CorpusConfig, SceneConfig, QueryKind, derive_queries};
//!
//! let cfg = CorpusConfig { images: 20, scene: SceneConfig::default() };
//! let corpus = Corpus::generate(&cfg, 42);
//! let queries = derive_queries(&corpus, &[QueryKind::Exact], 5, 7);
//! assert_eq!(queries.len(), 5);
//! assert!(queries[0].target.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod generator;
/// Retrieval-quality metrics over ranked lists.
pub mod metrics;
mod mix;
mod queries;
mod skew;

pub use corpus::{Corpus, CorpusConfig, ImageId};
pub use generator::{generate_scene, scene_from_seed, Placement, SceneConfig};
pub use mix::{RequestKind, RequestMix};
pub use queries::{derive_queries, derive_query, Query, QueryKind};
pub use skew::Skew;
