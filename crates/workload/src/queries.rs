//! Query derivation with ground truth.
//!
//! Each query is derived from a known corpus image, so retrieval quality
//! is measurable: the derived query *should* rank its source image first
//! (except decoys, which have no right answer). The kinds mirror the
//! paper's §4 claims: exact matches, partial icon sets, partially changed
//! spatial relations, and rotated/reflected copies.

use crate::{Corpus, ImageId};
use be2d_geometry::{Scene, Transform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The way a query is derived from its source image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryKind {
    /// A verbatim copy of the source scene.
    Exact,
    /// Keep only `keep` randomly chosen objects — the "partial of icons"
    /// case of §4.
    DropObjects {
        /// Number of objects to keep (clamped to the scene size).
        keep: usize,
    },
    /// Translate each object independently by up to `max_delta` in each
    /// axis direction (clamped to the frame) — perturbs a fraction of the
    /// spatial relations, the "partial of spatial relationships" case.
    Jitter {
        /// Maximum per-axis displacement magnitude.
        max_delta: i64,
    },
    /// The source scene under a D4 transform — §4's rotation/reflection
    /// retrieval.
    Transformed(
        /// The transform applied to the source scene.
        Transform,
    ),
    /// A freshly generated unrelated scene; no relevant image exists.
    Decoy,
}

impl fmt::Display for QueryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryKind::Exact => f.write_str("exact"),
            QueryKind::DropObjects { keep } => write!(f, "drop-to-{keep}"),
            QueryKind::Jitter { max_delta } => write!(f, "jitter-{max_delta}"),
            QueryKind::Transformed(t) => write!(f, "transformed-{t}"),
            QueryKind::Decoy => f.write_str("decoy"),
        }
    }
}

/// A derived query: the scene to search with, how it was made, and which
/// image it should retrieve (`None` for decoys).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The query scene.
    pub scene: Scene,
    /// Derivation recipe.
    pub kind: QueryKind,
    /// Ground-truth relevant image, if any.
    pub target: Option<ImageId>,
}

/// Derives one query of the given kind from the corpus image `source`.
///
/// # Panics
///
/// Panics when `source` is not in the corpus.
#[must_use]
pub fn derive_query(corpus: &Corpus, source: ImageId, kind: QueryKind, rng: &mut StdRng) -> Query {
    let scene = corpus.scene(source).expect("source image exists");
    let (scene, target) = match kind {
        QueryKind::Exact => (scene.clone(), Some(source)),
        QueryKind::DropObjects { keep } => {
            let keep = keep.min(scene.len());
            // choose `keep` distinct indices
            let mut indices: Vec<usize> = (0..scene.len()).collect();
            for i in (1..indices.len()).rev() {
                let j = rng.random_range(0..=i);
                indices.swap(i, j);
            }
            indices.truncate(keep);
            indices.sort_unstable();
            let mut q = Scene::new(scene.width(), scene.height()).expect("frame");
            for &i in &indices {
                let o = &scene.objects()[i];
                q.add(o.class().clone(), o.mbr()).expect("same frame");
            }
            (q, Some(source))
        }
        QueryKind::Jitter { max_delta } => {
            let mut q = Scene::new(scene.width(), scene.height()).expect("frame");
            for o in scene {
                let m = o.mbr();
                let dx = rng.random_range(-max_delta..=max_delta);
                let dy = rng.random_range(-max_delta..=max_delta);
                let dx = dx.clamp(-m.x_begin(), scene.width() - m.x_end());
                let dy = dy.clamp(-m.y_begin(), scene.height() - m.y_end());
                q.add(o.class().clone(), m.translated(dx, dy))
                    .expect("clamped in frame");
            }
            (q, Some(source))
        }
        QueryKind::Transformed(t) => (scene.transformed(t), Some(source)),
        QueryKind::Decoy => {
            let cfg = crate::SceneConfig {
                width: scene.width().max(16),
                height: scene.height().max(16),
                objects: scene.len().max(2),
                ..crate::SceneConfig {
                    min_size: 4,
                    max_size: (scene.width().min(scene.height()) / 2).max(4),
                    ..Default::default()
                }
            };
            (crate::generate_scene(&cfg, rng), None)
        }
    };
    Query {
        scene,
        kind,
        target,
    }
}

/// Derives `per_kind` queries for every kind, rotating through corpus
/// images deterministically.
#[must_use]
pub fn derive_queries(
    corpus: &Corpus,
    kinds: &[QueryKind],
    per_kind: usize,
    seed: u64,
) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(kinds.len() * per_kind);
    for &kind in kinds {
        for i in 0..per_kind {
            let source = ImageId(if corpus.is_empty() {
                panic!("cannot derive queries from an empty corpus")
            } else {
                (i * 7 + 3) % corpus.len()
            });
            out.push(derive_query(corpus, source, kind, &mut rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CorpusConfig, SceneConfig};

    fn corpus() -> Corpus {
        Corpus::generate(
            &CorpusConfig {
                images: 10,
                scene: SceneConfig::default(),
            },
            11,
        )
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn exact_copies_source() {
        let c = corpus();
        let q = derive_query(&c, ImageId(2), QueryKind::Exact, &mut rng());
        assert_eq!(&q.scene, c.scene(ImageId(2)).unwrap());
        assert_eq!(q.target, Some(ImageId(2)));
    }

    #[test]
    fn drop_keeps_subset() {
        let c = corpus();
        let q = derive_query(
            &c,
            ImageId(0),
            QueryKind::DropObjects { keep: 3 },
            &mut rng(),
        );
        assert_eq!(q.scene.len(), 3);
        // every kept object exists in the source with identical class+mbr
        let src = c.scene(ImageId(0)).unwrap();
        for o in &q.scene {
            assert!(src
                .iter()
                .any(|s| s.class() == o.class() && s.mbr() == o.mbr()));
        }
    }

    #[test]
    fn drop_clamps_to_scene_size() {
        let c = corpus();
        let q = derive_query(
            &c,
            ImageId(0),
            QueryKind::DropObjects { keep: 999 },
            &mut rng(),
        );
        assert_eq!(q.scene.len(), c.scene(ImageId(0)).unwrap().len());
    }

    #[test]
    fn jitter_preserves_classes_and_sizes() {
        let c = corpus();
        let q = derive_query(
            &c,
            ImageId(1),
            QueryKind::Jitter { max_delta: 10 },
            &mut rng(),
        );
        let src = c.scene(ImageId(1)).unwrap();
        assert_eq!(q.scene.len(), src.len());
        for (a, b) in src.iter().zip(q.scene.iter()) {
            assert_eq!(a.class(), b.class());
            assert_eq!(a.mbr().width(), b.mbr().width());
            assert_eq!(a.mbr().height(), b.mbr().height());
            assert!((a.mbr().x_begin() - b.mbr().x_begin()).abs() <= 10);
        }
    }

    #[test]
    fn transformed_matches_scene_transform() {
        let c = corpus();
        for t in Transform::ALL {
            let q = derive_query(&c, ImageId(4), QueryKind::Transformed(t), &mut rng());
            assert_eq!(q.scene, c.scene(ImageId(4)).unwrap().transformed(t));
        }
    }

    #[test]
    fn decoy_has_no_target() {
        let c = corpus();
        let q = derive_query(&c, ImageId(0), QueryKind::Decoy, &mut rng());
        assert_eq!(q.target, None);
        assert!(!q.scene.is_empty());
    }

    #[test]
    fn derive_queries_is_deterministic() {
        let c = corpus();
        let kinds = [
            QueryKind::Exact,
            QueryKind::Decoy,
            QueryKind::Jitter { max_delta: 5 },
        ];
        let a = derive_queries(&c, &kinds, 4, 99);
        let b = derive_queries(&c, &kinds, 4, 99);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
    }

    #[test]
    fn kind_display() {
        assert_eq!(QueryKind::Exact.to_string(), "exact");
        assert_eq!(QueryKind::DropObjects { keep: 2 }.to_string(), "drop-to-2");
        assert_eq!(
            QueryKind::Transformed(Transform::Rotate90).to_string(),
            "transformed-rotate-90"
        );
    }
}
