//! Request-mix sampling for online-serving workloads.
//!
//! A retrieval *service* does not see one operation at a time — it sees
//! an interleaved stream of inserts, deletes, in-place edits and
//! searches. [`RequestMix`] describes that stream as integer weights per
//! [`RequestKind`] and samples it deterministically, so a load generator
//! (or a stress test) can replay the exact same operation sequence from
//! a seed.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One kind of request a retrieval service can receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// Index a new image.
    InsertImage,
    /// Remove a stored image.
    RemoveImage,
    /// Add one object to a stored image (§3.2 incremental maintenance).
    AddObject,
    /// Remove one object from a stored image (§3.2).
    RemoveObject,
    /// Ranked similarity search with a scene query.
    Search,
    /// Ranked similarity search with a spatial-pattern sketch.
    SearchSketch,
    /// Read service statistics.
    Stats,
}

impl RequestKind {
    /// Every kind, in the canonical order used by mix strings.
    pub const ALL: [RequestKind; 7] = [
        RequestKind::InsertImage,
        RequestKind::RemoveImage,
        RequestKind::AddObject,
        RequestKind::RemoveObject,
        RequestKind::Search,
        RequestKind::SearchSketch,
        RequestKind::Stats,
    ];

    /// The short name used in mix strings (`insert`, `search`, …).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            RequestKind::InsertImage => "insert",
            RequestKind::RemoveImage => "remove",
            RequestKind::AddObject => "add-object",
            RequestKind::RemoveObject => "remove-object",
            RequestKind::Search => "search",
            RequestKind::SearchSketch => "sketch",
            RequestKind::Stats => "stats",
        }
    }

    /// Whether the request mutates the database.
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(
            self,
            RequestKind::InsertImage
                | RequestKind::RemoveImage
                | RequestKind::AddObject
                | RequestKind::RemoveObject
        )
    }

    fn parse(name: &str) -> Option<RequestKind> {
        RequestKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A weighted mix of request kinds, sampled deterministically.
///
/// # Example
///
/// ```
/// use be2d_workload::{RequestKind, RequestMix};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mix: RequestMix = "insert=2,search=8".parse().unwrap();
/// let mut rng = StdRng::seed_from_u64(7);
/// let kinds: Vec<RequestKind> = (0..100).map(|_| mix.sample(&mut rng)).collect();
/// assert!(kinds.contains(&RequestKind::Search));
/// assert!(!kinds.contains(&RequestKind::Stats), "weight 0 is never drawn");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestMix {
    /// `weights[i]` belongs to `RequestKind::ALL[i]`.
    weights: Vec<u32>,
}

impl RequestMix {
    /// A mix with the given `(kind, weight)` pairs; unlisted kinds get
    /// weight 0. Returns `None` when every weight is 0.
    #[must_use]
    pub fn new(weights: &[(RequestKind, u32)]) -> Option<RequestMix> {
        let mut table = vec![0u32; RequestKind::ALL.len()];
        for &(kind, w) in weights {
            let slot = RequestKind::ALL
                .iter()
                .position(|&k| k == kind)
                .expect("kind is in ALL");
            table[slot] += w;
        }
        (table.iter().any(|&w| w > 0)).then_some(RequestMix { weights: table })
    }

    /// The default serving mix: search-heavy with a steady trickle of
    /// inserts and §3.2 edits — roughly the "millions of readers, some
    /// writers" shape an image-retrieval service sees.
    #[must_use]
    pub fn serving_default() -> RequestMix {
        RequestMix::new(&[
            (RequestKind::InsertImage, 15),
            (RequestKind::RemoveImage, 2),
            (RequestKind::AddObject, 4),
            (RequestKind::RemoveObject, 2),
            (RequestKind::Search, 70),
            (RequestKind::SearchSketch, 5),
            (RequestKind::Stats, 2),
        ])
        .expect("non-zero weights")
    }

    /// The read-heavy mix: ~95% searches with a thin maintenance
    /// trickle — the replica-scaling shape (reads spread across
    /// copies, writes fan out to all of them), selectable in the load
    /// generator as `--mix read-heavy`.
    #[must_use]
    pub fn read_heavy() -> RequestMix {
        RequestMix::new(&[
            (RequestKind::InsertImage, 3),
            (RequestKind::RemoveImage, 1),
            (RequestKind::Search, 90),
            (RequestKind::SearchSketch, 4),
            (RequestKind::Stats, 2),
        ])
        .expect("non-zero weights")
    }

    /// The churn mix: write-dominant with a steady read check — the
    /// shape that stresses shard rebalancing, since every insert,
    /// removal and §3.2 edit lands on the routing epoch while records
    /// stream between shards (selectable in the load generator as
    /// `--mix churn`, e.g. under a live `--reshard-to` migration).
    #[must_use]
    pub fn churn() -> RequestMix {
        RequestMix::new(&[
            (RequestKind::InsertImage, 30),
            (RequestKind::RemoveImage, 12),
            (RequestKind::AddObject, 18),
            (RequestKind::RemoveObject, 8),
            (RequestKind::Search, 28),
            (RequestKind::SearchSketch, 2),
            (RequestKind::Stats, 2),
        ])
        .expect("non-zero weights")
    }

    /// The weight of one kind.
    #[must_use]
    pub fn weight(&self, kind: RequestKind) -> u32 {
        let slot = RequestKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind is in ALL");
        self.weights[slot]
    }

    /// Sum of all weights (> 0 by construction).
    #[must_use]
    pub fn total_weight(&self) -> u32 {
        self.weights.iter().sum()
    }

    /// Draws one request kind with probability proportional to its
    /// weight.
    pub fn sample(&self, rng: &mut StdRng) -> RequestKind {
        let mut ticket = rng.random_range(0..self.total_weight());
        for (kind, &w) in RequestKind::ALL.iter().zip(&self.weights) {
            if ticket < w {
                return *kind;
            }
            ticket -= w;
        }
        unreachable!("ticket < total_weight")
    }

    /// Pre-samples a whole operation schedule, so concurrent workers can
    /// slice one deterministic sequence instead of racing on an RNG.
    #[must_use]
    pub fn schedule(&self, n: usize, rng: &mut StdRng) -> Vec<RequestKind> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

impl std::str::FromStr for RequestMix {
    type Err = String;

    /// Parses a preset name (`"serving"`, `"read-heavy"` or `"churn"`)
    /// or `kind=weight` pairs separated by `,` (e.g.
    /// `"insert=2,search=8"`). Unknown kinds and malformed weights are
    /// errors; an all-zero mix is an error.
    fn from_str(s: &str) -> Result<RequestMix, String> {
        match s.trim() {
            "serving" => return Ok(RequestMix::serving_default()),
            "read-heavy" => return Ok(RequestMix::read_heavy()),
            "churn" => return Ok(RequestMix::churn()),
            _ => {}
        }
        let mut weights = Vec::new();
        for pair in s.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (name, weight) = pair
                .split_once('=')
                .ok_or_else(|| format!("expected `kind=weight`, got {pair:?}"))?;
            let kind = RequestKind::parse(name.trim())
                .ok_or_else(|| format!("unknown request kind {:?}", name.trim()))?;
            let weight: u32 = weight
                .trim()
                .parse()
                .map_err(|_| format!("invalid weight {:?} for {kind}", weight.trim()))?;
            weights.push((kind, weight));
        }
        RequestMix::new(&weights).ok_or_else(|| format!("mix {s:?} has no positive weight"))
    }
}

impl fmt::Display for RequestMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (kind, &w) in RequestKind::ALL.iter().zip(&self.weights) {
            if w == 0 {
                continue;
            }
            if !first {
                f.write_str(",")?;
            }
            write!(f, "{kind}={w}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn parse_display_roundtrip() {
        let mix: RequestMix = "insert=2, search=8,sketch=1".parse().unwrap();
        assert_eq!(mix.weight(RequestKind::InsertImage), 2);
        assert_eq!(mix.weight(RequestKind::Search), 8);
        assert_eq!(mix.weight(RequestKind::RemoveImage), 0);
        assert_eq!(mix.total_weight(), 11);
        let text = mix.to_string();
        assert_eq!(text.parse::<RequestMix>().unwrap(), mix);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("".parse::<RequestMix>().is_err());
        assert!("insert".parse::<RequestMix>().is_err());
        assert!("warp=1".parse::<RequestMix>().is_err());
        assert!("insert=x".parse::<RequestMix>().is_err());
        assert!("insert=0,search=0".parse::<RequestMix>().is_err());
        assert!(RequestMix::new(&[]).is_none());
    }

    #[test]
    fn sampling_is_deterministic_and_proportional() {
        let mix: RequestMix = "insert=1,search=3".parse().unwrap();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(mix.schedule(500, &mut a), mix.schedule(500, &mut b));

        let mut rng = StdRng::seed_from_u64(7);
        let schedule = mix.schedule(4000, &mut rng);
        let searches = schedule
            .iter()
            .filter(|&&k| k == RequestKind::Search)
            .count();
        // Expected 3000 of 4000; a loose window keeps this robust.
        assert!((2700..3300).contains(&searches), "searches = {searches}");
        assert!(schedule
            .iter()
            .all(|k| matches!(k, RequestKind::InsertImage | RequestKind::Search)));
    }

    #[test]
    fn serving_default_is_search_heavy() {
        let mix = RequestMix::serving_default();
        assert!(mix.weight(RequestKind::Search) > mix.total_weight() / 2);
        assert!(mix.weight(RequestKind::InsertImage) > 0);
    }

    #[test]
    fn preset_names_parse() {
        assert_eq!(
            "serving".parse::<RequestMix>().unwrap(),
            RequestMix::serving_default()
        );
        let read_heavy: RequestMix = "read-heavy".parse().unwrap();
        assert_eq!(read_heavy, RequestMix::read_heavy());
        // Reads dominate: ≥ 90% of the weight is non-mutating.
        let write_weight: u32 = RequestKind::ALL
            .into_iter()
            .filter(|k| k.is_write())
            .map(|k| read_heavy.weight(k))
            .sum();
        assert!(write_weight * 10 <= read_heavy.total_weight());
        // Presets survive the Display/parse round-trip as plain weights.
        let text = read_heavy.to_string();
        assert_eq!(text.parse::<RequestMix>().unwrap(), read_heavy);

        // The churn preset is write-dominant (the resharding stressor).
        let churn: RequestMix = "churn".parse().unwrap();
        assert_eq!(churn, RequestMix::churn());
        let churn_writes: u32 = RequestKind::ALL
            .into_iter()
            .filter(|k| k.is_write())
            .map(|k| churn.weight(k))
            .sum();
        assert!(churn_writes * 2 > churn.total_weight());
        assert_eq!(churn.to_string().parse::<RequestMix>().unwrap(), churn);
    }

    #[test]
    fn kind_metadata() {
        assert!(RequestKind::InsertImage.is_write());
        assert!(!RequestKind::Search.is_write());
        assert_eq!(RequestKind::AddObject.to_string(), "add-object");
        for kind in RequestKind::ALL {
            assert_eq!(RequestKind::parse(kind.name()), Some(kind));
        }
    }
}
