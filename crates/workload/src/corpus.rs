//! Corpora: seeded collections of scenes standing in for an image
//! database's content.

use crate::{generate_scene, SceneConfig};
use be2d_geometry::Scene;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an image within a corpus (and within `be2d-db`
/// databases built from one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ImageId(pub usize);

impl ImageId {
    /// The raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "img{}", self.0)
    }
}

/// Parameters of a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of images.
    pub images: usize,
    /// Per-scene generation parameters.
    pub scene: SceneConfig,
}

/// A seeded collection of scenes with dense [`ImageId`]s.
///
/// # Example
///
/// ```
/// use be2d_workload::{Corpus, CorpusConfig, SceneConfig, ImageId};
///
/// let corpus = Corpus::generate(
///     &CorpusConfig { images: 10, scene: SceneConfig::default() },
///     123,
/// );
/// assert_eq!(corpus.len(), 10);
/// assert_eq!(corpus.scene(ImageId(3)).unwrap().len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    scenes: Vec<Scene>,
    seed: u64,
}

impl Corpus {
    /// Generates a corpus deterministically from a seed.
    #[must_use]
    pub fn generate(cfg: &CorpusConfig, seed: u64) -> Corpus {
        // one RNG per image, derived from the master seed, so corpora are
        // stable under changes to `images`
        let scenes = (0..cfg.images)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e3779b9));
                generate_scene(&cfg.scene, &mut rng)
            })
            .collect();
        Corpus { scenes, seed }
    }

    /// Builds a corpus from explicit scenes (used by tests and the demo).
    #[must_use]
    pub fn from_scenes(scenes: Vec<Scene>) -> Corpus {
        Corpus { scenes, seed: 0 }
    }

    /// The master seed the corpus was generated from.
    #[must_use]
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of images.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scenes.len()
    }

    /// Whether the corpus is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scenes.is_empty()
    }

    /// The scene of an image.
    #[must_use]
    pub fn scene(&self, id: ImageId) -> Option<&Scene> {
        self.scenes.get(id.index())
    }

    /// Iterates `(id, scene)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ImageId, &Scene)> {
        self.scenes.iter().enumerate().map(|(i, s)| (ImageId(i), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(images: usize) -> CorpusConfig {
        CorpusConfig {
            images,
            scene: SceneConfig::default(),
        }
    }

    #[test]
    fn deterministic() {
        let a = Corpus::generate(&cfg(5), 7);
        let b = Corpus::generate(&cfg(5), 7);
        assert_eq!(a, b);
        assert_ne!(a, Corpus::generate(&cfg(5), 8));
        assert_eq!(a.seed(), 7);
    }

    #[test]
    fn prefix_stable_under_growth() {
        let small = Corpus::generate(&cfg(3), 7);
        let large = Corpus::generate(&cfg(6), 7);
        for (id, scene) in small.iter() {
            assert_eq!(Some(scene), large.scene(id), "{id}");
        }
    }

    #[test]
    fn lookup_and_iteration() {
        let c = Corpus::generate(&cfg(4), 1);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert!(c.scene(ImageId(3)).is_some());
        assert!(c.scene(ImageId(4)).is_none());
        let ids: Vec<_> = c.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, [0, 1, 2, 3]);
    }

    #[test]
    fn from_scenes() {
        let scenes = vec![Scene::new(10, 10).unwrap()];
        let c = Corpus::from_scenes(scenes);
        assert_eq!(c.len(), 1);
        assert!(c.scene(ImageId(0)).unwrap().is_empty());
    }

    #[test]
    fn display_of_image_id() {
        assert_eq!(ImageId(12).to_string(), "img12");
        assert_eq!(ImageId(12).index(), 12);
    }
}
