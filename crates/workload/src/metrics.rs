//! Retrieval-quality metrics over ranked result lists.

use crate::ImageId;
use std::collections::HashSet;

/// Precision at cutoff `k`: fraction of the top-`k` results that are
/// relevant. Empty rankings or `k = 0` give 0.
#[must_use]
pub fn precision_at_k(ranked: &[ImageId], relevant: &HashSet<ImageId>, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|id| relevant.contains(id))
        .count();
    hits as f64 / k.min(ranked.len()).max(1) as f64
}

/// Recall at cutoff `k`: fraction of relevant images appearing in the
/// top-`k`. Empty relevant sets give 1 (nothing to find). Duplicate ids
/// in the ranking are counted once.
#[must_use]
pub fn recall_at_k(ranked: &[ImageId], relevant: &HashSet<ImageId>, k: usize) -> f64 {
    if relevant.is_empty() {
        return 1.0;
    }
    let hits: HashSet<&ImageId> = ranked
        .iter()
        .take(k)
        .filter(|id| relevant.contains(id))
        .collect();
    hits.len() as f64 / relevant.len() as f64
}

/// Reciprocal rank of the first relevant result (`1/rank`, 0 when absent).
#[must_use]
pub fn reciprocal_rank(ranked: &[ImageId], relevant: &HashSet<ImageId>) -> f64 {
    ranked
        .iter()
        .position(|id| relevant.contains(id))
        .map_or(0.0, |pos| 1.0 / (pos + 1) as f64)
}

/// Average precision: mean of precision@rank over the ranks of relevant
/// results. 0 when nothing relevant is retrieved; 1 when all relevant
/// images head the ranking. Duplicate ids in the ranking count at their
/// first occurrence only.
#[must_use]
pub fn average_precision(ranked: &[ImageId], relevant: &HashSet<ImageId>) -> f64 {
    if relevant.is_empty() {
        return 1.0;
    }
    let mut seen: HashSet<ImageId> = HashSet::new();
    let mut sum = 0.0;
    for (i, id) in ranked.iter().enumerate() {
        if relevant.contains(id) && seen.insert(*id) {
            sum += seen.len() as f64 / (i + 1) as f64;
        }
    }
    sum / relevant.len() as f64
}

/// Arithmetic mean of a slice (0 for empty input).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Nearest-rank percentile of an already **sorted** slice (0 for empty
/// input) — the shared definition behind every `BENCH_*.json` latency
/// report, so server loadgen and bench sweeps stay comparable.
#[must_use]
#[allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<ImageId> {
        v.iter().map(|i| ImageId(*i)).collect()
    }

    fn rel(v: &[usize]) -> HashSet<ImageId> {
        v.iter().map(|i| ImageId(*i)).collect()
    }

    #[test]
    fn percentile_edges() {
        assert!((percentile(&[], 50.0) - 0.0).abs() < 1e-12);
        let data = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&data, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&data, 100.0) - 4.0).abs() < 1e-12);
        assert!(
            (percentile(&data, 50.0) - 3.0).abs() < 1e-12,
            "rounds up at .5"
        );
    }

    #[test]
    fn precision() {
        let ranked = ids(&[1, 2, 3, 4]);
        let relevant = rel(&[2, 4]);
        assert_eq!(precision_at_k(&ranked, &relevant, 1), 0.0);
        assert_eq!(precision_at_k(&ranked, &relevant, 2), 0.5);
        assert_eq!(precision_at_k(&ranked, &relevant, 4), 0.5);
        assert_eq!(precision_at_k(&ranked, &relevant, 0), 0.0);
        // k beyond the ranking length normalises by the ranking length
        assert_eq!(precision_at_k(&ranked, &relevant, 10), 0.5);
        assert_eq!(precision_at_k(&[], &relevant, 3), 0.0);
    }

    #[test]
    fn recall() {
        let ranked = ids(&[1, 2, 3, 4]);
        let relevant = rel(&[2, 4, 9]);
        assert_eq!(recall_at_k(&ranked, &relevant, 2), 1.0 / 3.0);
        assert_eq!(recall_at_k(&ranked, &relevant, 4), 2.0 / 3.0);
        assert_eq!(recall_at_k(&ranked, &rel(&[]), 4), 1.0);
    }

    #[test]
    fn rr() {
        assert_eq!(reciprocal_rank(&ids(&[7, 3, 5]), &rel(&[5])), 1.0 / 3.0);
        assert_eq!(reciprocal_rank(&ids(&[5, 3]), &rel(&[5])), 1.0);
        assert_eq!(reciprocal_rank(&ids(&[1, 2]), &rel(&[9])), 0.0);
        assert_eq!(reciprocal_rank(&[], &rel(&[9])), 0.0);
    }

    #[test]
    fn ap() {
        // relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2
        let ap = average_precision(&ids(&[5, 1, 6]), &rel(&[5, 6]));
        assert!((ap - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
        assert_eq!(average_precision(&ids(&[1, 2]), &rel(&[])), 1.0);
        assert_eq!(average_precision(&ids(&[1, 2]), &rel(&[3])), 0.0);
        assert_eq!(average_precision(&ids(&[3]), &rel(&[3])), 1.0);
    }

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn duplicate_rankings_stay_bounded() {
        // a buggy scorer may emit the same id twice; metrics must not
        // exceed 1
        let ranked = ids(&[13, 13, 13]);
        let relevant = rel(&[13]);
        assert_eq!(recall_at_k(&ranked, &relevant, 3), 1.0);
        assert_eq!(average_precision(&ranked, &relevant), 1.0);
        assert_eq!(reciprocal_rank(&ranked, &relevant), 1.0);
        assert!(precision_at_k(&ranked, &relevant, 3) <= 1.0);
    }
}
