//! Randomised scene generation.

use be2d_geometry::{ObjectClass, Rect, Scene};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How objects are placed in the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Placement {
    /// Positions uniform over the frame; overlaps allowed. The general
    /// case for the similarity experiments.
    #[default]
    Uniform,
    /// Rejection-sampled so MBRs neither overlap nor touch — a one-pixel
    /// separation is kept (falling back to overlapping placement after 64
    /// failed attempts per object). The separation matches the raster
    /// pipeline's assumptions: objects don't occlude each other, and
    /// same-class objects stay distinct connected components under
    /// extraction.
    NonOverlapping,
    /// Objects gather around a few cluster centres — produces many
    /// coincident/nearby boundaries, stressing the dummy-placement logic
    /// and the cutting baselines.
    Clustered {
        /// Number of cluster centres.
        clusters: usize,
    },
}

/// Parameters of one random scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Frame width.
    pub width: i64,
    /// Frame height.
    pub height: i64,
    /// Number of objects.
    pub objects: usize,
    /// Size of the class alphabet (`C0`, `C1`, …).
    pub classes: usize,
    /// Minimum object side length.
    pub min_size: i64,
    /// Maximum object side length.
    pub max_size: i64,
    /// Placement policy.
    pub placement: Placement,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            width: 256,
            height: 256,
            objects: 8,
            classes: 6,
            min_size: 8,
            max_size: 64,
            placement: Placement::Uniform,
        }
    }
}

impl SceneConfig {
    /// The class name used for index `i` (`C0`, `C1`, …).
    #[must_use]
    pub fn class_name(i: usize) -> String {
        format!("C{i}")
    }
}

/// Generates one scene from a dedicated RNG.
///
/// # Panics
///
/// Panics when the configuration is inconsistent (sizes exceeding the
/// frame, zero classes with nonzero objects, non-positive sizes).
#[must_use]
pub fn generate_scene(cfg: &SceneConfig, rng: &mut StdRng) -> Scene {
    assert!(
        cfg.min_size > 0 && cfg.min_size <= cfg.max_size,
        "invalid size range"
    );
    assert!(
        cfg.max_size <= cfg.width && cfg.max_size <= cfg.height,
        "object sizes must fit the frame"
    );
    assert!(
        cfg.classes > 0 || cfg.objects == 0,
        "need classes for objects"
    );
    let mut scene = Scene::new(cfg.width, cfg.height).expect("positive frame");

    let centres: Vec<(i64, i64)> = match cfg.placement {
        Placement::Clustered { clusters } => (0..clusters.max(1))
            .map(|_| {
                (
                    rng.random_range(0..cfg.width),
                    rng.random_range(0..cfg.height),
                )
            })
            .collect(),
        _ => Vec::new(),
    };

    for _ in 0..cfg.objects {
        let class = ObjectClass::new(&SceneConfig::class_name(rng.random_range(0..cfg.classes)));
        let mut placed = false;
        for attempt in 0..64 {
            let w = rng.random_range(cfg.min_size..=cfg.max_size);
            let h = rng.random_range(cfg.min_size..=cfg.max_size);
            let (xb, yb) = match cfg.placement {
                Placement::Clustered { .. } => {
                    let (cx, cy) = centres[rng.random_range(0..centres.len())];
                    let spread_x = (cfg.width / 8).max(1);
                    let spread_y = (cfg.height / 8).max(1);
                    let xb = (cx + rng.random_range(-spread_x..=spread_x) - w / 2)
                        .clamp(0, cfg.width - w);
                    let yb = (cy + rng.random_range(-spread_y..=spread_y) - h / 2)
                        .clamp(0, cfg.height - h);
                    (xb, yb)
                }
                _ => (
                    rng.random_range(0..=cfg.width - w),
                    rng.random_range(0..=cfg.height - h),
                ),
            };
            let mbr = Rect::new(xb, xb + w, yb, yb + h).expect("positive size");
            // Grown by one pixel on every side: rejecting overlaps of the
            // grown MBR enforces the one-pixel separation that keeps
            // same-class objects distinct under raster extraction.
            let grown = Rect::new(xb - 1, xb + w + 1, yb - 1, yb + h + 1).expect("positive size");
            let collides = cfg.placement == Placement::NonOverlapping
                && attempt < 63
                && scene.iter().any(|o| o.mbr().overlaps(&grown));
            if !collides {
                scene.add(class.clone(), mbr).expect("fits by construction");
                placed = true;
                break;
            }
        }
        debug_assert!(placed, "placement must succeed via fallback");
    }
    scene
}

/// Convenience: a scene from a bare seed.
#[must_use]
pub fn scene_from_seed(cfg: &SceneConfig, seed: u64) -> Scene {
    generate_scene(cfg, &mut StdRng::seed_from_u64(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let cfg = SceneConfig::default();
        let a = scene_from_seed(&cfg, 99);
        let b = scene_from_seed(&cfg, 99);
        assert_eq!(a, b);
        let c = scene_from_seed(&cfg, 100);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn respects_object_count_and_frame() {
        let cfg = SceneConfig {
            objects: 20,
            ..SceneConfig::default()
        };
        let scene = scene_from_seed(&cfg, 1);
        assert_eq!(scene.len(), 20);
        for o in &scene {
            assert!(o.mbr().x_begin() >= 0 && o.mbr().x_end() <= cfg.width);
            assert!(o.mbr().y_begin() >= 0 && o.mbr().y_end() <= cfg.height);
            assert!(o.mbr().width() >= cfg.min_size && o.mbr().width() <= cfg.max_size);
        }
    }

    #[test]
    fn class_alphabet_is_respected() {
        let cfg = SceneConfig {
            objects: 50,
            classes: 3,
            ..SceneConfig::default()
        };
        let scene = scene_from_seed(&cfg, 2);
        for o in &scene {
            assert!(["C0", "C1", "C2"].contains(&o.class().name()));
        }
        assert!(scene.classes().len() <= 3);
    }

    #[test]
    fn non_overlapping_placement() {
        let cfg = SceneConfig {
            objects: 10,
            placement: Placement::NonOverlapping,
            min_size: 8,
            max_size: 24,
            ..SceneConfig::default()
        };
        let scene = scene_from_seed(&cfg, 3);
        assert_eq!(scene.len(), 10);
        for (i, a) in scene.iter().enumerate() {
            for b in scene.objects()[i + 1..].iter() {
                assert!(!a.mbr().overlaps(&b.mbr()), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn clustered_placement_generates_valid_scene() {
        let cfg = SceneConfig {
            objects: 30,
            placement: Placement::Clustered { clusters: 3 },
            ..SceneConfig::default()
        };
        let scene = scene_from_seed(&cfg, 4);
        assert_eq!(scene.len(), 30);
    }

    #[test]
    fn empty_scene() {
        let cfg = SceneConfig {
            objects: 0,
            classes: 0,
            ..SceneConfig::default()
        };
        assert!(scene_from_seed(&cfg, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "object sizes must fit the frame")]
    fn rejects_oversized_objects() {
        let cfg = SceneConfig {
            width: 16,
            height: 16,
            max_size: 64,
            ..SceneConfig::default()
        };
        let _ = scene_from_seed(&cfg, 6);
    }
}
