//! Skewed target selection for online-serving workloads.
//!
//! Real traffic is rarely uniform: a few images receive most of the
//! edits and a few queries dominate the search mix. [`Skew`] models
//! that as a two-bucket distribution — with probability
//! `hot_probability` an operation targets the *hot subset* of the
//! candidate items, otherwise it picks uniformly over all of them.
//!
//! Two hot-subset shapes are supported:
//!
//! * **prefix** (`stride <= 1`): the first `ceil(hot_fraction · len)`
//!   items are hot — "the oldest images soak up the edits";
//! * **stride** (`stride > 1`): items whose index is `≡ 0 (mod stride)`
//!   are hot. Aimed at a sharded database whose routing is
//!   `id % shards`, setting `stride = shards` concentrates the hot set
//!   on **one shard**, so a load generator can exercise hot-shard
//!   imbalance deliberately.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A two-bucket hot/cold target distribution (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Skew {
    /// Probability in `[0, 1]` that a draw targets the hot subset.
    pub hot_probability: f64,
    /// Fraction in `(0, 1]` of items considered hot in prefix mode.
    pub hot_fraction: f64,
    /// `> 1` switches to stride mode: indices `≡ 0 (mod stride)` are
    /// hot. `0` and `1` mean prefix mode.
    pub stride: usize,
}

impl Default for Skew {
    fn default() -> Self {
        Skew::uniform()
    }
}

impl Skew {
    /// No skew: every draw is uniform over all items.
    #[must_use]
    pub fn uniform() -> Skew {
        Skew {
            hot_probability: 0.0,
            hot_fraction: 1.0,
            stride: 0,
        }
    }

    /// Prefix-mode skew: `hot_probability` of draws hit the first
    /// `hot_fraction` of the items.
    ///
    /// Returns `None` when the parameters are out of range.
    #[must_use]
    pub fn new(hot_probability: f64, hot_fraction: f64) -> Option<Skew> {
        ((0.0..=1.0).contains(&hot_probability) && hot_fraction > 0.0 && hot_fraction <= 1.0)
            .then_some(Skew {
                hot_probability,
                hot_fraction,
                stride: 0,
            })
    }

    /// Stride-mode skew: `hot_probability` of draws hit indices
    /// `≡ 0 (mod stride)`. With `stride` equal to the server's shard
    /// count (and ids routed `id % shards`), the hot set collapses onto
    /// shard 0.
    ///
    /// Returns `None` when the parameters are out of range.
    #[must_use]
    pub fn with_stride(hot_probability: f64, stride: usize) -> Option<Skew> {
        ((0.0..=1.0).contains(&hot_probability) && stride > 1).then_some(Skew {
            hot_probability,
            hot_fraction: 1.0,
            stride,
        })
    }

    /// Whether this skew ever deviates from uniform.
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        self.hot_probability <= 0.0 || (self.stride <= 1 && self.hot_fraction >= 1.0)
    }

    /// Draws one index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics when `len` is 0.
    pub fn pick(&self, len: usize, rng: &mut StdRng) -> usize {
        assert!(len > 0, "cannot pick from an empty set");
        if !self.is_uniform() && rng.random_bool(self.hot_probability) {
            if self.stride > 1 {
                // hot = {0, stride, 2·stride, …} ∩ [0, len)
                let hot = len.div_ceil(self.stride);
                return self.stride * rng.random_range(0..hot);
            }
            #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
            #[allow(clippy::cast_possible_truncation)]
            let hot = ((len as f64 * self.hot_fraction).ceil() as usize).clamp(1, len);
            return rng.random_range(0..hot);
        }
        rng.random_range(0..len)
    }
}

impl std::str::FromStr for Skew {
    type Err = String;

    /// Parses `"P"` (prefix mode, hot fraction 0.1), `"P/F"` (prefix
    /// mode, explicit hot fraction) or `"P/sN"` (stride mode, hot
    /// indices `≡ 0 (mod N)`). `"0"` is uniform.
    fn from_str(s: &str) -> Result<Skew, String> {
        let bad = |what: &str| format!("invalid skew {s:?}: {what}");
        let (p_text, rest) = match s.split_once('/') {
            Some((p, rest)) => (p, Some(rest)),
            None => (s, None),
        };
        let p: f64 = p_text
            .trim()
            .parse()
            .map_err(|_| bad("hot probability must be a number"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(bad("hot probability must be in [0, 1]"));
        }
        match rest.map(str::trim) {
            None => {
                if p == 0.0 {
                    Ok(Skew::uniform())
                } else {
                    Skew::new(p, 0.1).ok_or_else(|| bad("out of range"))
                }
            }
            Some(stride) if stride.starts_with('s') => {
                let n: usize = stride[1..]
                    .parse()
                    .map_err(|_| bad("stride must be sN with integer N >= 2"))?;
                Skew::with_stride(p, n).ok_or_else(|| bad("stride must be >= 2"))
            }
            Some(fraction) => {
                let f: f64 = fraction
                    .parse()
                    .map_err(|_| bad("hot fraction must be a number"))?;
                Skew::new(p, f).ok_or_else(|| bad("hot fraction must be in (0, 1]"))
            }
        }
    }
}

impl fmt::Display for Skew {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_uniform() {
            f.write_str("uniform")
        } else if self.stride > 1 {
            write!(f, "{}/s{}", self.hot_probability, self.stride)
        } else {
            write!(f, "{}/{}", self.hot_probability, self.hot_fraction)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_everything() {
        let skew = Skew::uniform();
        assert!(skew.is_uniform());
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[skew.pick(8, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn prefix_skew_concentrates_on_the_head() {
        let skew = Skew::new(0.9, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..2000).filter(|_| skew.pick(100, &mut rng) < 10).count();
        // 0.9 hot draws land in [0, 10); 0.1 cold draws hit it 10% of
        // the time → ≈ 91% expected.
        assert!(hits > 1650, "prefix skew too weak: {hits}/2000");
    }

    #[test]
    fn stride_skew_hits_multiples() {
        let skew = Skew::with_stride(1.0, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let pick = skew.pick(13, &mut rng);
            assert_eq!(pick % 4, 0, "stride mode only picks multiples");
            assert!(pick < 13);
        }
        // partial-stride tails are reachable (12 is the last multiple)
        let mut seen12 = false;
        for _ in 0..500 {
            seen12 |= skew.pick(13, &mut rng) == 12;
        }
        assert!(seen12);
    }

    #[test]
    fn tiny_sets_stay_in_bounds() {
        let skew = Skew::new(1.0, 0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for len in 1..6 {
            for _ in 0..50 {
                assert!(skew.pick(len, &mut rng) < len);
            }
        }
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("0".parse::<Skew>().unwrap(), Skew::uniform());
        let p: Skew = "0.9".parse().unwrap();
        assert_eq!(p, Skew::new(0.9, 0.1).unwrap());
        let pf: Skew = "0.8/0.25".parse().unwrap();
        assert_eq!(pf, Skew::new(0.8, 0.25).unwrap());
        let ps: Skew = "0.7/s4".parse().unwrap();
        assert_eq!(ps, Skew::with_stride(0.7, 4).unwrap());
        assert_eq!(ps.to_string(), "0.7/s4");
        assert_eq!(pf.to_string(), "0.8/0.25");
        assert_eq!(Skew::uniform().to_string(), "uniform");

        for bad in ["x", "1.5", "-0.1", "0.5/0", "0.5/1.2", "0.5/s1", "0.5/sx"] {
            assert!(bad.parse::<Skew>().is_err(), "{bad}");
        }
    }
}
