//! # be2d-demo — the §5 visualized retrieval system, in a terminal
//!
//! The paper demonstrates the 2D BE-string model with a GUI retrieval
//! system (§5, shown only as screenshots). This crate reproduces that
//! workflow end to end on synthetic corpora:
//!
//! * [`bundle`] — a demo *bundle*: named scenes persisted as JSON, from
//!   which the image database is rebuilt on load;
//! * [`display`] — ASCII scene rendering, ranked-result tables, BE-string
//!   dumps and LCS alignment views;
//! * the `be2d-demo` binary — `gen`, `show`, `query` and `walkthrough`
//!   subcommands (see `be2d-demo help`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod bundle;
pub mod display;
