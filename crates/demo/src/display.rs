//! Terminal rendering: scenes, result tables, BE-string dumps and LCS
//! alignments.

use be2d_core::{BeString, BeString2D, LcsTable};
use be2d_db::SearchHit;
use be2d_geometry::Scene;
use be2d_imaging::scene_ascii;

/// Renders a scene as a bordered ASCII panel with a title.
#[must_use]
pub fn scene_panel(title: &str, scene: &Scene) -> String {
    let art = scene_ascii(scene);
    let width = scene.width() as usize;
    let mut out = String::new();
    out.push_str(&format!(
        "┌─ {} {}┐\n",
        title,
        "─".repeat(width.saturating_sub(title.len() + 2))
    ));
    for line in art.lines() {
        out.push_str(&format!("│{line}│\n"));
    }
    out.push_str(&format!("└{}┘\n", "─".repeat(width)));
    out
}

/// Renders the `(u, v)` string pair of an image.
#[must_use]
pub fn bestring_dump(s: &BeString2D) -> String {
    format!("u (x-axis): {}\nv (y-axis): {}\n", s.x(), s.y())
}

/// Formats a ranked result table.
#[must_use]
pub fn result_table(hits: &[SearchHit]) -> String {
    let mut out = String::new();
    out.push_str("rank  score   transform       x-LCS  y-LCS  name\n");
    out.push_str("----  ------  --------------  -----  -----  ----------------\n");
    for (i, h) in hits.iter().enumerate() {
        out.push_str(&format!(
            "{:>4}  {:.4}  {:<14}  {:>5}  {:>5}  {}\n",
            i + 1,
            h.score,
            h.transform.to_string(),
            h.similarity.x.lcs_len,
            h.similarity.y.lcs_len,
            h.name,
        ));
    }
    if hits.is_empty() {
        out.push_str("(no results)\n");
    }
    out
}

/// Shows the LCS between two axis strings: both inputs and the matched
/// subsequence (Algorithm 3 output).
#[must_use]
pub fn lcs_alignment(axis: &str, query: &BeString, target: &BeString) -> String {
    let table = LcsTable::build(query, target);
    let lcs = table.lcs_string();
    let rendered: Vec<String> = lcs.iter().map(ToString::to_string).collect();
    format!(
        "{axis}-axis LCS (length {}):\n  query : {}\n  target: {}\n  common: {}\n",
        table.length(),
        query,
        target,
        rendered.join(" "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use be2d_core::convert_scene;
    use be2d_db::{ImageDatabase, QueryOptions};
    use be2d_geometry::SceneBuilder;

    fn demo_scene() -> Scene {
        SceneBuilder::new(20, 10)
            .object("A", (1, 5, 1, 5))
            .object("B", (8, 16, 3, 9))
            .build()
            .unwrap()
    }

    #[test]
    fn scene_panel_has_border_and_content() {
        let p = scene_panel("test", &demo_scene());
        assert!(p.starts_with("┌─ test "));
        assert!(p.contains('a'));
        assert!(p.contains('b'));
        assert!(p.trim_end().ends_with('┘'));
        // 10 content rows + top + bottom
        assert_eq!(p.lines().count(), 12);
    }

    #[test]
    fn bestring_dump_contains_both_axes() {
        let d = bestring_dump(&convert_scene(&demo_scene()));
        assert!(d.contains("u (x-axis): E A_b E A_e E B_b E B_e E"));
        assert!(d.contains("v (y-axis):"));
    }

    #[test]
    fn result_table_formats_hits() {
        let mut db = ImageDatabase::new();
        db.insert_scene("one", &demo_scene()).unwrap();
        let hits = db.search_scene(&demo_scene(), &QueryOptions::default());
        let t = result_table(&hits);
        assert!(t.contains("one"));
        assert!(t.contains("1.0000"));
        assert!(t.contains("identity"));
        assert!(result_table(&[]).contains("(no results)"));
    }

    #[test]
    fn lcs_alignment_shows_common_string() {
        let s = convert_scene(&demo_scene());
        let a = lcs_alignment("x", s.x(), s.x());
        assert!(a.contains("x-axis LCS (length 9)"));
        assert!(a.contains("common: E A_b E A_e E B_b E B_e E"));
    }
}
