//! Demo bundles: named scenes persisted to JSON, with the database
//! rebuilt on load.
//!
//! The database itself stores only symbolic pictures; the demo also wants
//! to *draw* the images, so the bundle keeps the geometric scenes and
//! reconverts on load (conversion is O(n log n) per image — instant at
//! demo scale).

use be2d_db::{DbError, ImageDatabase, RecordId};
use be2d_geometry::Scene;
use be2d_workload::{Corpus, CorpusConfig, Placement, SceneConfig};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A persisted demo corpus: named scenes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bundle {
    /// Named scenes in record-id order.
    pub scenes: Vec<(String, Scene)>,
}

impl Bundle {
    /// Generates a bundle of random scenes.
    #[must_use]
    pub fn generate(images: usize, objects: usize, classes: usize, seed: u64) -> Bundle {
        let cfg = CorpusConfig {
            images,
            scene: SceneConfig {
                objects,
                classes,
                placement: Placement::NonOverlapping,
                width: 64,
                height: 48,
                min_size: 4,
                max_size: 16,
            },
        };
        let corpus = Corpus::generate(&cfg, seed);
        let scenes = corpus
            .iter()
            .map(|(id, scene)| (format!("image-{}", id.index()), scene.clone()))
            .collect();
        Bundle { scenes }
    }

    /// Number of images in the bundle.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scenes.len()
    }

    /// Whether the bundle is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scenes.is_empty()
    }

    /// The scene stored under a record id.
    #[must_use]
    pub fn scene(&self, id: RecordId) -> Option<&Scene> {
        self.scenes.get(id.index()).map(|(_, s)| s)
    }

    /// Builds the image database for the bundle (ids align with scene
    /// positions).
    ///
    /// # Errors
    ///
    /// Propagates database insertion errors.
    pub fn build_database(&self) -> Result<ImageDatabase, DbError> {
        let mut db = ImageDatabase::new();
        for (name, scene) in &self.scenes {
            db.insert_scene(name, scene)?;
        }
        Ok(db)
    }

    /// Saves the bundle as JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialisation and I/O errors.
    pub fn save(&self, path: &Path) -> Result<(), DbError> {
        let json = serde_json::to_string(self).map_err(|e| DbError::Persist {
            reason: e.to_string(),
        })?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Loads a bundle from JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialisation errors.
    pub fn load(path: &Path) -> Result<Bundle, DbError> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(|e| DbError::Persist {
            reason: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let a = Bundle::generate(5, 6, 4, 9);
        let b = Bundle::generate(5, 6, 4, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert_eq!(a.scenes[0].1.len(), 6);
    }

    #[test]
    fn database_ids_align_with_scenes() {
        let bundle = Bundle::generate(4, 5, 3, 1);
        let db = bundle.build_database().unwrap();
        assert_eq!(db.len(), 4);
        for i in 0..4 {
            let id = RecordId(i);
            assert_eq!(db.get(id).unwrap().name, bundle.scenes[i].0);
            assert_eq!(
                db.get(id).unwrap().symbolic.object_count(),
                bundle.scene(id).unwrap().len()
            );
        }
        assert!(bundle.scene(RecordId(9)).is_none());
    }

    #[test]
    fn save_load_roundtrip() {
        let bundle = Bundle::generate(3, 4, 3, 2);
        let path = std::env::temp_dir().join("be2d_demo_bundle_test.json");
        bundle.save(&path).unwrap();
        let back = Bundle::load(&path).unwrap();
        assert_eq!(bundle, back);
        std::fs::remove_file(&path).ok();
        assert!(Bundle::load(Path::new("/nonexistent/b.json")).is_err());
    }
}
