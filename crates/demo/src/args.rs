//! A deliberately tiny `--key value` argument parser (no external CLI
//! dependency needed for a demo binary).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The first positional token (subcommand).
    pub command: String,
    /// `--key value` pairs; bare `--flag`s map to `"true"`.
    pub options: HashMap<String, String>,
}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a message when no subcommand is present or an option key
    /// is malformed.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, String> {
        let mut it = raw.into_iter().peekable();
        let command = it.next().ok_or("missing subcommand; try `help`")?;
        if command.starts_with("--") {
            return Err(format!("expected subcommand before option {command}"));
        }
        let mut options = HashMap::new();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got {tok:?}"))?;
            if key.is_empty() {
                return Err("empty option name".into());
            }
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().expect("peeked"),
                _ => "true".to_owned(),
            };
            options.insert(key.to_owned(), value);
        }
        Ok(Args { command, options })
    }

    /// String option with a default.
    #[must_use]
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map_or(default, String::as_str)
    }

    /// Parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v:?}")),
        }
    }

    /// Whether a bare flag was passed.
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).is_some_and(|v| v == "true")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        Args::parse(tokens.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_subcommand_and_options() {
        let a = parse(&["gen", "--images", "20", "--out", "x.json", "--verbose"]).unwrap();
        assert_eq!(a.command, "gen");
        assert_eq!(a.get_or("out", "-"), "x.json");
        assert_eq!(a.get_num("images", 0usize).unwrap(), 20);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["show"]).unwrap();
        assert_eq!(a.get_or("db", "demo.json"), "demo.json");
        assert_eq!(a.get_num("id", 7usize).unwrap(), 7);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--oops"]).is_err());
        assert!(parse(&["gen", "images"]).is_err());
        assert!(parse(&["gen", "--"]).is_err());
        let a = parse(&["gen", "--images", "abc"]).unwrap();
        assert!(a.get_num("images", 0usize).is_err());
    }

    #[test]
    fn flag_followed_by_option() {
        let a = parse(&["query", "--invariant", "--id", "3"]).unwrap();
        assert!(a.flag("invariant"));
        assert_eq!(a.get_num("id", 0usize).unwrap(), 3);
    }
}
