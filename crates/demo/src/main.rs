//! `be2d-demo` — the terminal visualized retrieval system (§5 of the
//! paper, reproduced on synthetic corpora).
//!
//! ```text
//! be2d-demo gen        --out demo.json [--images 12] [--objects 6] [--classes 4] [--seed 42]
//! be2d-demo show       --db demo.json --id 0
//! be2d-demo query      --db demo.json --source 0 [--kind exact|drop:K|jitter:D|rot90|rot180|rot270|flipx|flipy]
//!                      [--invariant] [--top 5] [--seed 7]
//! be2d-demo walkthrough [--seed 42]
//! be2d-demo help
//! ```

use be2d_core::convert_scene;
use be2d_db::QueryOptions;
use be2d_demo::args::Args;
use be2d_demo::bundle::Bundle;
use be2d_demo::display::{bestring_dump, lcs_alignment, result_table, scene_panel};
use be2d_geometry::Transform;
use be2d_workload::{derive_query, Corpus, ImageId, QueryKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "gen" => cmd_gen(&args),
        "show" => cmd_show(&args),
        "query" => cmd_query(&args),
        "search" => cmd_search(&args),
        "explain" => cmd_explain(&args),
        "walkthrough" => cmd_walkthrough(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}; try `help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
be2d-demo — visualized similarity retrieval on 2D BE-strings

subcommands:
  gen          generate a demo corpus   (--out FILE --images N --objects M --classes C --seed S)
  show         display one image        (--db FILE --id K)
  query        run a similarity search  (--db FILE --source K --kind KIND --invariant --top N --seed S)
  search       search by spatial pattern (--db FILE --pattern \"C0 left-of C1\" --top N)
  explain      show the Algorithm 2 DP table for two images (--db FILE --query K --target J)
  walkthrough  scripted end-to-end demonstration (--seed S)
  help         this text

query kinds: exact, drop:K (keep K objects), jitter:D (move by ±D),
             rot90, rot180, rot270, flipx, flipy
pattern relations: left-of right-of above below inside contains overlaps";

fn cmd_gen(args: &Args) -> Result<(), String> {
    let images = args.get_num("images", 12usize)?;
    let objects = args.get_num("objects", 6usize)?;
    let classes = args.get_num("classes", 4usize)?;
    let seed = args.get_num("seed", 42u64)?;
    let out = args.get_or("out", "demo.json");
    let bundle = Bundle::generate(images, objects, classes, seed);
    bundle.save(Path::new(out)).map_err(|e| e.to_string())?;
    println!("wrote {images} images ({objects} objects each) to {out}");
    Ok(())
}

fn load_bundle(args: &Args) -> Result<Bundle, String> {
    let db = args.get_or("db", "demo.json");
    Bundle::load(Path::new(db)).map_err(|e| format!("cannot load {db}: {e}"))
}

fn cmd_show(args: &Args) -> Result<(), String> {
    let bundle = load_bundle(args)?;
    let id = args.get_num("id", 0usize)?;
    let (name, scene) = bundle
        .scenes
        .get(id)
        .ok_or_else(|| format!("no image with id {id}"))?;
    print!("{}", scene_panel(name, scene));
    print!("{}", bestring_dump(&convert_scene(scene)));
    Ok(())
}

fn parse_kind(kind: &str) -> Result<QueryKind, String> {
    if let Some(k) = kind.strip_prefix("drop:") {
        return Ok(QueryKind::DropObjects {
            keep: k.parse().map_err(|_| format!("bad drop count {k:?}"))?,
        });
    }
    if let Some(d) = kind.strip_prefix("jitter:") {
        return Ok(QueryKind::Jitter {
            max_delta: d.parse().map_err(|_| format!("bad jitter delta {d:?}"))?,
        });
    }
    match kind {
        "exact" => Ok(QueryKind::Exact),
        "rot90" => Ok(QueryKind::Transformed(Transform::Rotate90)),
        "rot180" => Ok(QueryKind::Transformed(Transform::Rotate180)),
        "rot270" => Ok(QueryKind::Transformed(Transform::Rotate270)),
        "flipx" => Ok(QueryKind::Transformed(Transform::ReflectX)),
        "flipy" => Ok(QueryKind::Transformed(Transform::ReflectY)),
        other => Err(format!("unknown query kind {other:?}")),
    }
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let bundle = load_bundle(args)?;
    let source = args.get_num("source", 0usize)?;
    let kind = parse_kind(args.get_or("kind", "exact"))?;
    let top = args.get_num("top", 5usize)?;
    let seed = args.get_num("seed", 7u64)?;
    if source >= bundle.len() {
        return Err(format!("no image with id {source}"));
    }

    let corpus = Corpus::from_scenes(bundle.scenes.iter().map(|(_, s)| s.clone()).collect());
    let mut rng = StdRng::seed_from_u64(seed);
    let query = derive_query(&corpus, ImageId(source), kind, &mut rng);

    let db = bundle.build_database().map_err(|e| e.to_string())?;
    let mut options = if args.flag("invariant") {
        QueryOptions::transform_invariant()
    } else {
        QueryOptions::default()
    };
    options.top_k = Some(top);
    let hits = db.search_scene(&query.scene, &options);

    print!(
        "{}",
        scene_panel(&format!("query ({kind})", kind = query.kind), &query.scene)
    );
    println!();
    print!("{}", result_table(&hits));
    if let Some(best) = hits.first() {
        if let Some(target_scene) = bundle.scene(best.id) {
            println!();
            print!(
                "{}",
                scene_panel(&format!("best match: {}", best.name), target_scene)
            );
            let q = convert_scene(&query.scene);
            let t = convert_scene(target_scene);
            println!();
            print!("{}", lcs_alignment("x", q.x(), t.x()));
        }
    }
    Ok(())
}

fn cmd_search(args: &Args) -> Result<(), String> {
    let bundle = load_bundle(args)?;
    let pattern = args.get_or("pattern", "");
    if pattern.is_empty() {
        return Err("missing --pattern, e.g. --pattern \"C0 left-of C1\"".into());
    }
    let top = args.get_num("top", 5usize)?;
    let sketch = be2d_db::sketch::Sketch::parse(pattern).map_err(|e| e.to_string())?;
    let query = sketch.to_scene().map_err(|e| e.to_string())?;
    let db = bundle.build_database().map_err(|e| e.to_string())?;
    print!("{}", scene_panel(&format!("pattern: {sketch}"), &query));
    println!();
    let hits = db.search_scene(&query, &QueryOptions::default().with_top_k(Some(top)));
    print!("{}", result_table(&hits));
    Ok(())
}

fn cmd_explain(args: &Args) -> Result<(), String> {
    let bundle = load_bundle(args)?;
    let qi = args.get_num("query", 0usize)?;
    let ti = args.get_num("target", 1usize)?;
    let get = |i: usize| {
        bundle
            .scenes
            .get(i)
            .ok_or_else(|| format!("no image with id {i}"))
    };
    let (qname, qscene) = get(qi)?;
    let (tname, tscene) = get(ti)?;
    let q = convert_scene(qscene);
    let t = convert_scene(tscene);

    println!("query  {qname}: u = {}", q.x());
    println!("target {tname}: u = {}", t.x());
    println!("\nAlgorithm 2 signed inference table W (x-axis):");
    println!("(negative entries: the canonical LCS at that cell ends with a dummy)\n");
    let table = be2d_core::LcsTable::build(q.x(), t.x());
    if q.x().len() > 24 || t.x().len() > 24 {
        println!(
            "(strings too long to render; lengths {} x {})",
            q.x().len(),
            t.x().len()
        );
    } else {
        print!("{}", table.render(t.x()));
    }
    println!();
    print!("{}", lcs_alignment("x", q.x(), t.x()));
    println!();
    print!("{}", lcs_alignment("y", q.y(), t.y()));
    let sim = be2d_core::similarity(&q, &t);
    println!(
        "\nsimilarity: {:.4} (x {:.4}, y {:.4})",
        sim.score, sim.x.score, sim.y.score
    );
    Ok(())
}

fn cmd_walkthrough(args: &Args) -> Result<(), String> {
    let seed = args.get_num("seed", 42u64)?;
    println!("== 2D BE-string visualized retrieval walkthrough ==\n");
    let bundle = Bundle::generate(8, 5, 4, seed);
    let db = bundle.build_database().map_err(|e| e.to_string())?;
    println!("indexed {} images\n", db.len());

    let (name, scene) = &bundle.scenes[0];
    print!("{}", scene_panel(name, scene));
    print!("{}", bestring_dump(&convert_scene(scene)));

    println!("\n-- exact query --");
    let hits = db.search_scene(scene, &QueryOptions::default());
    print!("{}", result_table(&hits));

    println!("\n-- partial query (drop to 2 objects) --");
    let corpus = Corpus::from_scenes(bundle.scenes.iter().map(|(_, s)| s.clone()).collect());
    let mut rng = StdRng::seed_from_u64(seed);
    let partial = derive_query(
        &corpus,
        ImageId(0),
        QueryKind::DropObjects { keep: 2 },
        &mut rng,
    );
    let hits = db.search_scene(&partial.scene, &QueryOptions::default());
    print!("{}", result_table(&hits));

    println!("\n-- rotated query (90° cw), transform-invariant search --");
    let rotated = scene.transformed(Transform::Rotate90);
    let hits = db.search_scene(&rotated, &QueryOptions::transform_invariant());
    print!("{}", result_table(&hits));

    println!("\n-- spatial-pattern search: \"C0 left-of C1\" --");
    let sketch = be2d_db::sketch::Sketch::parse("C0 left-of C1").map_err(|e| e.to_string())?;
    let pattern = sketch.to_scene().map_err(|e| e.to_string())?;
    let hits = db.search_scene(&pattern, &QueryOptions::default().with_top_k(Some(3)));
    print!("{}", result_table(&hits));

    println!("\n-- near-duplicate scan over the corpus --");
    let strings: Vec<_> = bundle
        .scenes
        .iter()
        .map(|(_, s)| be2d_core::convert_scene(s))
        .collect();
    let matrix = be2d_core::similarity_matrix(&strings, &Default::default());
    let clusters = be2d_core::threshold_clusters(&matrix, 0.85);
    let dups: Vec<_> = clusters.iter().filter(|c| c.len() > 1).collect();
    if dups.is_empty() {
        println!("no near-duplicates above 0.85 (corpus of independent scenes)");
    } else {
        for c in dups {
            println!("duplicate group: {c:?}");
        }
    }

    println!("\nwalkthrough complete");
    Ok(())
}
