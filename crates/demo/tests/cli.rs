//! End-to-end tests of the `be2d-demo` binary.

use std::path::PathBuf;
use std::process::Command;

fn demo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_be2d-demo"))
}

fn temp_bundle(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("be2d_demo_cli_{name}.json"))
}

#[test]
fn help_prints_usage() {
    let out = demo().arg("help").output().expect("run binary");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("walkthrough"));
    assert!(text.contains("query"));
}

#[test]
fn unknown_subcommand_fails() {
    let out = demo().arg("frobnicate").output().expect("run binary");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn missing_bundle_fails_cleanly() {
    let out = demo()
        .args(["show", "--db", "/nonexistent/demo.json"])
        .output()
        .expect("run binary");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot load"));
}

#[test]
fn gen_show_query_pipeline() {
    let path = temp_bundle("pipeline");
    let out = demo()
        .args([
            "gen",
            "--out",
            path.to_str().unwrap(),
            "--images",
            "6",
            "--seed",
            "5",
        ])
        .output()
        .expect("run binary");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = demo()
        .args(["show", "--db", path.to_str().unwrap(), "--id", "0"])
        .output()
        .expect("run binary");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("image-0"));
    assert!(text.contains("u (x-axis):"));

    let out = demo()
        .args([
            "query",
            "--db",
            path.to_str().unwrap(),
            "--source",
            "0",
            "--kind",
            "exact",
        ])
        .output()
        .expect("run binary");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rank"), "table header present");
    assert!(text.contains("image-0"), "source image retrieved");
    assert!(text.contains("1.0000"), "exact query scores 1");
    assert!(text.contains("-axis LCS"), "alignment shown");

    std::fs::remove_file(&path).ok();
}

#[test]
fn rotated_query_with_invariance_recovers_source() {
    let path = temp_bundle("rot");
    assert!(demo()
        .args([
            "gen",
            "--out",
            path.to_str().unwrap(),
            "--images",
            "5",
            "--seed",
            "11"
        ])
        .status()
        .expect("run binary")
        .success());

    let out = demo()
        .args([
            "query",
            "--db",
            path.to_str().unwrap(),
            "--source",
            "2",
            "--kind",
            "rot90",
            "--invariant",
            "--top",
            "3",
        ])
        .output()
        .expect("run binary");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let first_rank_line = text
        .lines()
        .find(|l| l.trim_start().starts_with("1 "))
        .expect("has a top result");
    assert!(
        first_rank_line.contains("image-2"),
        "top hit is the source: {first_rank_line}"
    );
    assert!(first_rank_line.contains("1.0000"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn explain_renders_dp_table() {
    let path = temp_bundle("explain");
    assert!(demo()
        .args([
            "gen",
            "--out",
            path.to_str().unwrap(),
            "--images",
            "4",
            "--objects",
            "2",
            "--seed",
            "2"
        ])
        .status()
        .expect("run binary")
        .success());
    let out = demo()
        .args([
            "explain",
            "--db",
            path.to_str().unwrap(),
            "--query",
            "0",
            "--target",
            "1",
        ])
        .output()
        .expect("run binary");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Algorithm 2 signed inference table"));
    assert!(text.contains("similarity:"));
    assert!(text.contains("x-axis LCS"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn walkthrough_runs_end_to_end() {
    let out = demo()
        .args(["walkthrough", "--seed", "42"])
        .output()
        .expect("run binary");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("indexed 8 images"));
    assert!(text.contains("exact query"));
    assert!(text.contains("rotated query"));
    assert!(text.contains("spatial-pattern search"));
    assert!(text.contains("near-duplicate scan"));
    assert!(text.contains("walkthrough complete"));
}

#[test]
fn pattern_search() {
    let path = temp_bundle("pattern");
    assert!(demo()
        .args([
            "gen",
            "--out",
            path.to_str().unwrap(),
            "--images",
            "8",
            "--seed",
            "3"
        ])
        .status()
        .expect("run binary")
        .success());
    let out = demo()
        .args([
            "search",
            "--db",
            path.to_str().unwrap(),
            "--pattern",
            "C0 left-of C1",
        ])
        .output()
        .expect("run binary");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("pattern: C0 left-of C1"));
    assert!(text.contains("rank"));

    // malformed patterns fail cleanly
    let out = demo()
        .args([
            "search",
            "--db",
            path.to_str().unwrap(),
            "--pattern",
            "C0 nextto C1",
        ])
        .output()
        .expect("run binary");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown relation"));

    let out = demo()
        .args(["search", "--db", path.to_str().unwrap()])
        .output()
        .expect("run binary");
    assert!(!out.status.success());
    std::fs::remove_file(&path).ok();
}

#[test]
fn query_kind_validation() {
    let path = temp_bundle("kinds");
    assert!(demo()
        .args([
            "gen",
            "--out",
            path.to_str().unwrap(),
            "--images",
            "3",
            "--seed",
            "1"
        ])
        .status()
        .expect("run binary")
        .success());
    let out = demo()
        .args([
            "query",
            "--db",
            path.to_str().unwrap(),
            "--source",
            "0",
            "--kind",
            "bogus",
        ])
        .output()
        .expect("run binary");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown query kind"));
    std::fs::remove_file(&path).ok();
}
