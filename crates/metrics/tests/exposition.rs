//! Prometheus text exposition format tests: line syntax, stable names,
//! HELP/TYPE pairing, cumulative buckets, and label escaping.

use std::sync::Arc;
use std::time::Duration;

use be2d_metrics::{Counter, Registry, BUCKETS};

fn build_registry() -> Registry {
    let registry = Registry::new();
    let reqs = registry.counter(
        "be2d_http_responses_total",
        "HTTP responses by status class",
        &[("class", "2xx")],
    );
    reqs.add(42);
    registry.register_counter(
        "be2d_http_responses_total",
        "HTTP responses by status class",
        &[("class", "5xx")],
        Arc::new(Counter::new()),
    );
    registry.gauge_fn("be2d_uptime_seconds", "Process uptime", &[], || 12.5);
    let h = registry.histogram(
        "be2d_http_request_duration_seconds",
        "Request latency",
        &[("route", "search")],
    );
    h.record(Duration::from_micros(150));
    h.record(Duration::from_millis(3));
    registry
}

/// Every non-comment line must be `name{labels} value` with a parseable value.
#[test]
fn every_line_is_valid_prometheus_syntax() {
    let text = build_registry().render();
    assert!(text.ends_with('\n'));
    for line in text.lines() {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("line has a value");
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in line: {line}"
        );
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable value in line: {line}"
        );
        if let Some(rest) = series.strip_prefix(name) {
            if !rest.is_empty() {
                assert!(
                    rest.starts_with('{') && rest.ends_with('}'),
                    "bad labels: {line}"
                );
                assert!(rest.contains('='), "labels without assignment: {line}");
            }
        }
    }
}

/// Each family appears with exactly one HELP and one TYPE line, HELP first,
/// and the metric names are the stable public names.
#[test]
fn help_type_pairs_once_per_family_with_stable_names() {
    let text = build_registry().render();
    for name in [
        "be2d_http_responses_total",
        "be2d_uptime_seconds",
        "be2d_http_request_duration_seconds",
    ] {
        let help = format!("# HELP {name} ");
        let typ = format!("# TYPE {name} ");
        assert_eq!(
            text.lines().filter(|l| l.starts_with(&help)).count(),
            1,
            "exactly one HELP for {name}"
        );
        assert_eq!(
            text.lines().filter(|l| l.starts_with(&typ)).count(),
            1,
            "exactly one TYPE for {name}"
        );
        let help_idx = text.lines().position(|l| l.starts_with(&help)).unwrap();
        let type_idx = text.lines().position(|l| l.starts_with(&typ)).unwrap();
        assert_eq!(
            type_idx,
            help_idx + 1,
            "TYPE directly follows HELP for {name}"
        );
    }
    assert!(text.contains("# TYPE be2d_http_responses_total counter"));
    assert!(text.contains("# TYPE be2d_uptime_seconds gauge"));
    assert!(text.contains("# TYPE be2d_http_request_duration_seconds histogram"));
}

/// Histogram buckets are cumulative, end at +Inf == _count, and _sum is in
/// seconds.
#[test]
fn histogram_buckets_are_cumulative_in_seconds() {
    let text = build_registry().render();
    let bucket_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("be2d_http_request_duration_seconds_bucket"))
        .collect();
    assert_eq!(
        bucket_lines.len(),
        BUCKETS + 1,
        "one line per bucket plus +Inf"
    );
    let mut prev = 0u64;
    for line in &bucket_lines {
        let v: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
        assert!(v >= prev, "buckets must be cumulative: {line}");
        prev = v;
    }
    let inf = bucket_lines.last().unwrap();
    assert!(inf.contains("le=\"+Inf\""));
    assert_eq!(inf.rsplit_once(' ').unwrap().1, "2");
    let count_line = text
        .lines()
        .find(|l| l.starts_with("be2d_http_request_duration_seconds_count"))
        .unwrap();
    assert_eq!(count_line.rsplit_once(' ').unwrap().1, "2");
    let sum_line = text
        .lines()
        .find(|l| l.starts_with("be2d_http_request_duration_seconds_sum"))
        .unwrap();
    let sum: f64 = sum_line.rsplit_once(' ').unwrap().1.parse().unwrap();
    assert!(
        (sum - 0.00315).abs() < 1e-6,
        "sum should be 150µs + 3ms in seconds, got {sum}"
    );
    // The le labels carry the original route label too.
    assert!(bucket_lines[0].contains("route=\"search\""));
}

/// Label values with quotes, backslashes, and newlines are escaped.
#[test]
fn label_values_are_escaped() {
    let registry = Registry::new();
    registry
        .counter("esc_total", "escape test", &[("v", "a\"b\\c\nd")])
        .inc();
    let text = registry.render();
    assert!(text.contains("esc_total{v=\"a\\\"b\\\\c\\nd\"} 1"));
}

/// A histogram fed from many threads scrapes with consistent totals.
#[test]
fn concurrent_recording_scrapes_consistently() {
    let registry = Registry::new();
    let h = registry.histogram("conc_seconds", "concurrency test", &[]);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let h = Arc::clone(&h);
            scope.spawn(move || {
                for i in 0..5_000u64 {
                    h.record_ns(1_000 + i);
                }
            });
        }
    });
    let text = registry.render();
    let count_line = text
        .lines()
        .find(|l| l.starts_with("conc_seconds_count"))
        .unwrap();
    assert_eq!(count_line.rsplit_once(' ').unwrap().1, "20000");
    let inf_line = text
        .lines()
        .rfind(|l| l.starts_with("conc_seconds_bucket"))
        .unwrap();
    assert_eq!(inf_line.rsplit_once(' ').unwrap().1, "20000");
}
