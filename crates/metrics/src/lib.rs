//! Dependency-free, lock-free metrics primitives with Prometheus text exposition.
//!
//! The crate provides four building blocks:
//!
//! - [`Counter`] — a monotonically increasing `u64` (one atomic add to record).
//! - [`Gauge`] — a signed integer level that can go up and down.
//! - [`Histogram`] — a log-bucketed latency histogram over nanoseconds with
//!   power-of-two bucket bounds, safe for any number of concurrent writers.
//!   Snapshots are mergeable and expose `p50`/`p95`/`p99`/`max`.
//! - [`Registry`] — a process-wide catalogue of metric families rendered as
//!   Prometheus text format 0.0.4 (`# HELP`/`# TYPE` pairs, `_bucket{le=...}`
//!   cumulative buckets, `_sum`/`_count`, all durations in seconds).
//! - [`WindowedHistogram`] / [`WindowedCounter`] — rolling-window views of
//!   the same primitives: a ring of per-epoch slots rotated by a coarse
//!   tick, answering "p95 / rate over the last k epochs" instead of
//!   process-lifetime totals.
//!
//! The hot path (recording a sample) touches only atomics — no locks, no
//! allocation. The registry's mutex is taken only at registration time and
//! when rendering a scrape.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod window;

pub use window::{WindowedCounter, WindowedHistogram};

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of finite histogram bucket upper bounds.
///
/// Bounds are `1µs << i` for `i in 0..BUCKETS`, i.e. 1µs, 2µs, 4µs, ...,
/// up to `2^25` µs ≈ 33.6s. Samples above the last finite bound land in the
/// implicit `+Inf` overflow bucket.
pub const BUCKETS: usize = 26;

/// Finite bucket upper bounds in nanoseconds (exclusive of `+Inf`).
const fn bounds() -> [u64; BUCKETS] {
    let mut b = [0u64; BUCKETS];
    let mut i = 0;
    while i < BUCKETS {
        b[i] = 1_000u64 << i;
        i += 1;
    }
    b
}

/// The bucket upper bounds shared by every [`Histogram`], in nanoseconds.
pub const BOUNDS_NS: [u64; BUCKETS] = bounds();

const NS_PER_SEC: f64 = 1e9;

/// A monotonically increasing counter. Cloning the `Arc` handle shares the
/// underlying cell; recording is a single relaxed atomic add.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments the counter by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed integer gauge: a level that can move in both directions
/// (queue depth, outstanding reads, pool saturation).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (which may be negative) to the gauge.
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the gauge by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements the gauge by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Returns the current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log-bucketed latency histogram over nanoseconds.
///
/// Bucket bounds are the shared power-of-two ladder [`BOUNDS_NS`] plus an
/// implicit `+Inf` overflow bucket, so histograms from different sources are
/// always mergeable bucket-for-bucket. Recording is wait-free: one atomic add
/// for the bucket, plus count/sum/max updates.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS + 1],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS + 1],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one duration sample.
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one sample expressed in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let idx = BOUNDS_NS.partition_point(|b| *b < ns);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Zeroes every cell. Not atomic as a whole: a sample recorded
    /// concurrently with a reset may be partially erased, which is why
    /// the only caller is window rotation, where the slot being reset
    /// is by protocol not the one being recorded into.
    pub(crate) fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }

    /// Returns a point-in-time copy of the histogram state.
    ///
    /// Individual loads are relaxed, so a snapshot taken concurrently with
    /// writers may be mid-update by at most the in-flight samples; totals are
    /// never lost.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS + 1];
        for (slot, bucket) in counts.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state, supporting quantile
/// estimation and lossless merging with other snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; the final slot is the `+Inf` overflow bucket.
    pub counts: [u64; BUCKETS + 1],
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Largest observed sample in nanoseconds.
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (the identity element for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        Self {
            counts: [0; BUCKETS + 1],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Merges two snapshots element-wise. Merging is commutative and
    /// associative, so per-thread or per-shard histograms can be combined in
    /// any order.
    pub fn merge(&self, other: &Self) -> Self {
        let mut counts = self.counts;
        for (slot, c) in counts.iter_mut().zip(other.counts.iter()) {
            *slot += c;
        }
        Self {
            counts,
            count: self.count + other.count,
            sum_ns: self.sum_ns + other.sum_ns,
            max_ns: self.max_ns.max(other.max_ns),
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) in nanoseconds by linear
    /// interpolation within the containing bucket. Returns 0 for an empty
    /// snapshot; results are capped at the observed maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lower = if idx == 0 { 0 } else { BOUNDS_NS[idx - 1] };
                let upper = if idx < BUCKETS {
                    BOUNDS_NS[idx]
                } else {
                    self.max_ns.max(lower)
                };
                let frac = (rank - seen) as f64 / c as f64;
                let est = lower as f64 + frac * (upper - lower) as f64;
                return (est as u64).min(self.max_ns);
            }
            seen += c;
        }
        self.max_ns
    }

    /// Mean sample value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// A fixed pool of histograms addressed by index, for per-shard series where
/// the shard count can change at runtime (live resharding). Indices beyond
/// the pool clamp to the final slot, which the registry labels as an
/// overflow series (e.g. `shard="16+"`).
#[derive(Debug, Clone)]
pub struct HistogramPool {
    slots: Vec<Arc<Histogram>>,
}

impl HistogramPool {
    /// Creates a pool with `n` slots (at least one).
    pub fn new(n: usize) -> Self {
        Self {
            slots: (0..n.max(1)).map(|_| Arc::new(Histogram::new())).collect(),
        }
    }

    /// Returns the histogram for index `i`, clamping to the last slot.
    pub fn get(&self, i: usize) -> &Arc<Histogram> {
        &self.slots[i.min(self.slots.len() - 1)]
    }

    /// All slots in index order.
    pub fn slots(&self) -> &[Arc<Histogram>] {
        &self.slots
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always false: pools have at least one slot.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The kind of a metric family, controlling its `# TYPE` line and rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up/down level.
    Gauge,
    /// Log-bucketed latency histogram (rendered in seconds).
    Histogram,
}

impl MetricKind {
    fn type_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

type CounterFn = Box<dyn Fn() -> u64 + Send + Sync>;
type GaugeFn = Box<dyn Fn() -> f64 + Send + Sync>;

enum Series {
    Counter(Arc<Counter>),
    CounterFn(CounterFn),
    Gauge(Arc<Gauge>),
    GaugeFn(GaugeFn),
    Histogram(Arc<Histogram>),
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<(Vec<(String, String)>, Series)>,
}

/// A catalogue of metric families rendered as Prometheus text format.
///
/// Handles ([`Arc<Counter>`], [`Arc<Gauge>`], [`Arc<Histogram>`]) are shared
/// between the registry and the instrumented code, so recording never goes
/// through the registry. Callback series (`counter_fn`/`gauge_fn`) are
/// evaluated at scrape time for values derived from existing state.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().expect("metrics registry poisoned");
        f.debug_struct("Registry")
            .field("families", &families.len())
            .finish()
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn labels_to_owned(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn format_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Formats an `f64` the way Prometheus expects (no exponent surprises for
/// the magnitudes we emit; trailing-zero trimming left to default Display).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: Vec<(String, String)>,
        series: Series,
    ) {
        assert!(valid_name(name), "invalid metric name: {name}");
        let mut families = self.families.lock().expect("metrics registry poisoned");
        if let Some(f) = families.iter_mut().find(|f| f.name == name) {
            assert!(
                f.kind == kind,
                "metric {name} re-registered with a different kind"
            );
            f.series.push((labels, series));
        } else {
            families.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                series: vec![(labels, series)],
            });
        }
    }

    /// Creates and registers a new counter series, returning the handle.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.register_counter(name, help, labels, Arc::clone(&c));
        c
    }

    /// Registers an existing counter handle as a series of family `name`.
    pub fn register_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: Arc<Counter>,
    ) {
        self.register(
            name,
            help,
            MetricKind::Counter,
            labels_to_owned(labels),
            Series::Counter(counter),
        );
    }

    /// Registers a counter series whose value is computed at scrape time.
    pub fn counter_fn<F>(&self, name: &str, help: &str, labels: &[(&str, &str)], f: F)
    where
        F: Fn() -> u64 + Send + Sync + 'static,
    {
        self.register(
            name,
            help,
            MetricKind::Counter,
            labels_to_owned(labels),
            Series::CounterFn(Box::new(f)),
        );
    }

    /// Creates and registers a new gauge series, returning the handle.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.register(
            name,
            help,
            MetricKind::Gauge,
            labels_to_owned(labels),
            Series::Gauge(Arc::clone(&g)),
        );
        g
    }

    /// Registers an existing gauge handle as a series of family `name`.
    pub fn register_gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        gauge: Arc<Gauge>,
    ) {
        self.register(
            name,
            help,
            MetricKind::Gauge,
            labels_to_owned(labels),
            Series::Gauge(gauge),
        );
    }

    /// Registers a gauge series whose value is computed at scrape time.
    pub fn gauge_fn<F>(&self, name: &str, help: &str, labels: &[(&str, &str)], f: F)
    where
        F: Fn() -> f64 + Send + Sync + 'static,
    {
        self.register(
            name,
            help,
            MetricKind::Gauge,
            labels_to_owned(labels),
            Series::GaugeFn(Box::new(f)),
        );
    }

    /// Creates and registers a new histogram series, returning the handle.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.register_histogram(name, help, labels, Arc::clone(&h));
        h
    }

    /// Registers an existing histogram handle as a series of family `name`.
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        histogram: Arc<Histogram>,
    ) {
        self.register(
            name,
            help,
            MetricKind::Histogram,
            labels_to_owned(labels),
            Series::Histogram(histogram),
        );
    }

    /// Renders every family as Prometheus text exposition format 0.0.4.
    ///
    /// Durations are emitted in seconds; each family gets exactly one
    /// `# HELP` and one `# TYPE` line followed by all its series.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::with_capacity(4096);
        for family in families.iter() {
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!(
                "# TYPE {} {}\n",
                family.name,
                family.kind.type_name()
            ));
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            format_labels(labels),
                            c.get()
                        ));
                    }
                    Series::CounterFn(f) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            format_labels(labels),
                            f()
                        ));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            format_labels(labels),
                            g.get()
                        ));
                    }
                    Series::GaugeFn(f) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            format_labels(labels),
                            fmt_f64(f())
                        ));
                    }
                    Series::Histogram(h) => {
                        render_histogram(&mut out, &family.name, labels, &h.snapshot());
                    }
                }
            }
        }
        out
    }
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    snap: &HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    for (idx, &c) in snap.counts.iter().enumerate() {
        cumulative += c;
        let le = if idx < BUCKETS {
            fmt_f64(BOUNDS_NS[idx] as f64 / NS_PER_SEC)
        } else {
            "+Inf".to_string()
        };
        let mut with_le: Vec<(String, String)> = labels.to_vec();
        with_le.push(("le".to_string(), le));
        out.push_str(&format!(
            "{}_bucket{} {}\n",
            name,
            format_labels(&with_le),
            cumulative
        ));
    }
    out.push_str(&format!(
        "{}_sum{} {}\n",
        name,
        format_labels(labels),
        fmt_f64(snap.sum_ns as f64 / NS_PER_SEC)
    ));
    out.push_str(&format!(
        "{}_count{} {}\n",
        name,
        format_labels(labels),
        snap.count
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing_powers_of_two() {
        for w in BOUNDS_NS.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
        assert_eq!(BOUNDS_NS[0], 1_000);
    }

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        // A sample exactly on a bound lands in that bound's bucket;
        // one nanosecond above it lands in the next.
        for (i, &b) in BOUNDS_NS.iter().enumerate() {
            let h = Histogram::new();
            h.record_ns(b);
            assert_eq!(
                h.snapshot().counts[i],
                1,
                "bound {b} should fall in bucket {i}"
            );
            let h2 = Histogram::new();
            h2.record_ns(b + 1);
            assert_eq!(h2.snapshot().counts[i + 1], 1);
        }
        // Zero lands in the first bucket; a huge sample lands in +Inf.
        let h = Histogram::new();
        h.record_ns(0);
        h.record_ns(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[BUCKETS], 1);
    }

    #[test]
    fn concurrent_writers_lose_no_samples() {
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        h.record_ns(1_000 * (t + 1) + i % 7);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, threads * per_thread);
        assert_eq!(s.counts.iter().sum::<u64>(), threads * per_thread);
        assert!(s.max_ns >= 1_000 * threads);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |samples: &[u64]| {
            let h = Histogram::new();
            for &s in samples {
                h.record_ns(s);
            }
            h.snapshot()
        };
        let a = mk(&[100, 5_000, 1_000_000]);
        let b = mk(&[2_500, 2_500, 80_000_000]);
        let c = mk(&[999, 1_000, 1_001]);
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&HistogramSnapshot::empty()), a);
        let all = a.merge(&b).merge(&c);
        assert_eq!(all.count, 9);
        assert_eq!(all.max_ns, 80_000_000);
    }

    #[test]
    fn quantiles_are_ordered_and_capped_at_max() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record_ns(i * 10_000); // 10µs .. 10ms
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.50);
        let p95 = s.quantile(0.95);
        let p99 = s.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99 && p99 <= s.max_ns);
        // p50 of a uniform 10µs..10ms spread sits around 5ms, within the
        // 2x resolution of power-of-two buckets.
        assert!(p50 > 2_000_000 && p50 < 9_000_000, "p50={p50}");
        assert_eq!(s.quantile(1.0), s.max_ns);
        assert_eq!(HistogramSnapshot::empty().quantile(0.99), 0);
    }

    #[test]
    fn gauge_moves_both_directions() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.add(-5);
        assert_eq!(g.get(), -4);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn pool_clamps_to_last_slot() {
        let pool = HistogramPool::new(4);
        pool.get(2).record_ns(500);
        pool.get(99).record_ns(500);
        assert_eq!(pool.get(2).snapshot().count, 1);
        assert_eq!(pool.get(3).snapshot().count, 1);
        assert_eq!(pool.len(), 4);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        Registry::new().counter("9bad-name", "nope", &[]);
    }
}
