//! Rolling-window aggregation: a ring of epoch slots rotated by a
//! coarse external tick.
//!
//! Lifetime totals answer "how many ever" but not "what was p95 over
//! the last minute". A windowed metric keeps a ring of N per-epoch
//! slots; recording lands in the current slot (same wait-free atomics
//! as the base primitives), and a single external ticker advances the
//! ring once per epoch, resetting the slot it is about to reuse.
//! Reading merges the k most recent slots into one mergeable snapshot,
//! so the same ring serves a 10s, 1m, and 5m view at once.
//!
//! Rotation is deliberately **not** driven by a clock read on the hot
//! path: the recorder never branches on time, and tests tick
//! deterministically. The one caveat is inherent to the design: a
//! recorder that stalls for a full ring revolution (N epochs) between
//! loading the head and recording writes into a recycled slot — with
//! second-scale epochs and N ≥ 60 that is minutes of preemption, and
//! the sample lands in the *current* epoch rather than being lost.

use crate::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A latency histogram over the last N epochs.
///
/// Recording is as cheap as [`Histogram::record_ns`]; [`tick`]
/// (called by one background thread once per epoch) is the only
/// synchronised step. [`window`] merges the most recent `k` epochs —
/// including the live, partial one — into a [`HistogramSnapshot`].
///
/// [`tick`]: WindowedHistogram::tick
/// [`window`]: WindowedHistogram::window
#[derive(Debug)]
pub struct WindowedHistogram {
    slots: Vec<Histogram>,
    head: AtomicUsize,
    ticks: AtomicU64,
    epoch: Duration,
    rotate: Mutex<()>,
}

impl WindowedHistogram {
    /// A ring of `slots` epochs (clamped to ≥ 2) of `epoch` length
    /// each. The longest answerable window is `slots × epoch`.
    #[must_use]
    pub fn new(slots: usize, epoch: Duration) -> Self {
        WindowedHistogram {
            slots: (0..slots.max(2)).map(|_| Histogram::new()).collect(),
            head: AtomicUsize::new(0),
            ticks: AtomicU64::new(0),
            epoch,
            rotate: Mutex::new(()),
        }
    }

    /// Records one duration sample into the current epoch.
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one sample, in nanoseconds, into the current epoch.
    pub fn record_ns(&self, ns: u64) {
        self.slots[self.head.load(Ordering::Acquire)].record_ns(ns);
    }

    /// Advances the ring by one epoch: the oldest slot is reset and
    /// becomes the new current slot. Concurrent ticks serialise;
    /// concurrent recorders keep writing into the previous slot (their
    /// samples stay in the window) or the fresh one.
    pub fn tick(&self) {
        let _turn = self.rotate.lock().expect("window rotation poisoned");
        let next = (self.head.load(Ordering::Relaxed) + 1) % self.slots.len();
        self.slots[next].reset();
        self.head.store(next, Ordering::Release);
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Merges the `epochs` most recent slots (clamped to the ring
    /// size), newest first, including the live partial epoch.
    #[must_use]
    pub fn window(&self, epochs: usize) -> HistogramSnapshot {
        let n = self.slots.len();
        let head = self.head.load(Ordering::Acquire);
        let mut merged = HistogramSnapshot::empty();
        for back in 0..epochs.clamp(1, n) {
            let idx = (head + n - back) % n;
            merged = merged.merge(&self.slots[idx].snapshot());
        }
        merged
    }

    /// The configured epoch length.
    #[must_use]
    pub fn epoch(&self) -> Duration {
        self.epoch
    }

    /// Number of epoch slots in the ring.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Total ticks since construction (epochs completed).
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

/// An event counter over the last N epochs — the rate-of-change
/// companion to [`WindowedHistogram`], sharing the same
/// ring-of-epochs rotation protocol.
#[derive(Debug)]
pub struct WindowedCounter {
    slots: Vec<AtomicU64>,
    head: AtomicUsize,
    ticks: AtomicU64,
    epoch: Duration,
    rotate: Mutex<()>,
}

impl WindowedCounter {
    /// A ring of `slots` epochs (clamped to ≥ 2) of `epoch` length.
    #[must_use]
    pub fn new(slots: usize, epoch: Duration) -> Self {
        WindowedCounter {
            slots: (0..slots.max(2)).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicUsize::new(0),
            ticks: AtomicU64::new(0),
            epoch,
            rotate: Mutex::new(()),
        }
    }

    /// Adds one to the current epoch.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the current epoch.
    pub fn add(&self, n: u64) {
        self.slots[self.head.load(Ordering::Acquire)].fetch_add(n, Ordering::Relaxed);
    }

    /// Advances the ring by one epoch (see
    /// [`WindowedHistogram::tick`]).
    pub fn tick(&self) {
        let _turn = self.rotate.lock().expect("window rotation poisoned");
        let next = (self.head.load(Ordering::Relaxed) + 1) % self.slots.len();
        self.slots[next].store(0, Ordering::Relaxed);
        self.head.store(next, Ordering::Release);
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Sum over the `epochs` most recent slots (clamped to the ring
    /// size), including the live partial epoch.
    #[must_use]
    pub fn window(&self, epochs: usize) -> u64 {
        let n = self.slots.len();
        let head = self.head.load(Ordering::Acquire);
        (0..epochs.clamp(1, n))
            .map(|back| self.slots[(head + n - back) % n].load(Ordering::Relaxed))
            .sum()
    }

    /// Mean events per second over the `epochs` most recent slots,
    /// treating the live epoch as complete (a floor estimate while the
    /// current epoch is still filling).
    #[must_use]
    pub fn rate_per_sec(&self, epochs: usize) -> f64 {
        let epochs = epochs.clamp(1, self.slots.len());
        let span = self.epoch.as_secs_f64() * epochs as f64;
        if span <= 0.0 {
            return 0.0;
        }
        self.window(epochs) as f64 / span
    }

    /// The configured epoch length.
    #[must_use]
    pub fn epoch(&self) -> Duration {
        self.epoch
    }

    /// Number of epoch slots in the ring.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Total ticks since construction (epochs completed).
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const EPOCH: Duration = Duration::from_secs(1);

    #[test]
    fn histogram_window_covers_only_recent_epochs() {
        let w = WindowedHistogram::new(5, EPOCH);
        // Epoch 0: two samples; epoch 1: one sample; epoch 2: empty.
        w.record_ns(1_000);
        w.record_ns(2_000);
        w.tick();
        w.record_ns(3_000);
        w.tick();
        assert_eq!(w.window(1).count, 0, "live epoch is empty");
        assert_eq!(w.window(2).count, 1);
        assert_eq!(w.window(3).count, 3);
        assert_eq!(w.window(99).count, 3, "window clamps to the ring");
        assert_eq!(w.ticks(), 2);
    }

    #[test]
    fn old_epochs_fall_out_after_a_full_revolution() {
        let w = WindowedHistogram::new(3, EPOCH);
        w.record_ns(7_000);
        for _ in 0..3 {
            w.tick();
        }
        assert_eq!(w.window(3).count, 0, "ring recycled every slot");
        w.record_ns(1_000);
        assert_eq!(w.window(3).count, 1);
    }

    #[test]
    fn counter_window_and_rate() {
        let c = WindowedCounter::new(4, EPOCH);
        c.add(10);
        c.tick();
        c.add(2);
        assert_eq!(c.window(1), 2);
        assert_eq!(c.window(2), 12);
        assert!((c.rate_per_sec(2) - 6.0).abs() < 1e-12);
        c.tick();
        c.tick();
        c.tick();
        assert_eq!(c.window(4), 2, "epoch 1 is still the oldest of four");
        c.tick();
        assert_eq!(c.window(4), 0, "all epochs rotated out");
    }

    #[test]
    fn no_samples_lost_across_tick_boundaries() {
        // Recorders hammer the ring while a ticker rotates fewer times
        // than there are slots, so no slot a recorder can hold is ever
        // recycled: every sample must land in some live epoch.
        let w = Arc::new(WindowedHistogram::new(64, EPOCH));
        let c = Arc::new(WindowedCounter::new(64, EPOCH));
        let threads = 4;
        let per_thread = 20_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let w = Arc::clone(&w);
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        w.record_ns(1_000 * (t + 1) + i % 13);
                        c.inc();
                    }
                });
            }
            let w = Arc::clone(&w);
            let c = Arc::clone(&c);
            scope.spawn(move || {
                for _ in 0..32 {
                    w.tick();
                    c.tick();
                    std::thread::yield_now();
                }
            });
        });
        let snap = w.window(64);
        assert_eq!(snap.count, threads * per_thread);
        assert_eq!(snap.counts.iter().sum::<u64>(), threads * per_thread);
        assert_eq!(c.window(64), threads * per_thread);
    }

    #[test]
    fn interleaved_tick_and_record_schedules_conserve_counts() {
        // Property-style: for pseudo-random interleavings of record and
        // tick, the full-ring window always equals records issued since
        // the last full revolution (here: never a full revolution, so
        // all of them).
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..50 {
            let slots = 4 + (next() % 13) as usize;
            let w = WindowedCounter::new(slots, EPOCH);
            let mut recorded = 0u64;
            let mut ticks = 0usize;
            // Stay strictly inside one revolution.
            while ticks + 1 < slots {
                if next() % 3 == 0 {
                    w.tick();
                    ticks += 1;
                } else {
                    let n = next() % 5;
                    w.add(n);
                    recorded += n;
                }
            }
            assert_eq!(
                w.window(slots),
                recorded,
                "round {round}: slots={slots} ticks={ticks}"
            );
        }
    }

    #[test]
    fn windowed_quantiles_reflect_only_the_window() {
        let w = WindowedHistogram::new(8, EPOCH);
        // An old epoch full of slow samples...
        for _ in 0..100 {
            w.record_ns(40_000_000);
        }
        w.tick();
        // ...followed by a fast epoch.
        for _ in 0..100 {
            w.record_ns(50_000);
        }
        let recent = w.window(1);
        let both = w.window(2);
        assert!(recent.quantile(0.99) < 100_000);
        assert!(both.quantile(0.99) > 10_000_000);
        assert_eq!(both.count, 200);
    }
}
