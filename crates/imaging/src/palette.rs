//! Bidirectional mapping between object classes and raster class ids.

use be2d_geometry::ObjectClass;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Assigns dense `u32` ids (starting at 1; 0 is background) to object
/// classes, so scenes can be painted into and recovered from [`Raster`]s.
///
/// [`Raster`]: crate::Raster
///
/// # Example
///
/// ```
/// use be2d_imaging::ClassPalette;
/// use be2d_geometry::ObjectClass;
///
/// let mut palette = ClassPalette::new();
/// let a = palette.id_for(&ObjectClass::new("A"));
/// let b = palette.id_for(&ObjectClass::new("B"));
/// assert_ne!(a, b);
/// assert_eq!(palette.id_for(&ObjectClass::new("A")), a, "stable");
/// assert_eq!(palette.class_of(a).unwrap().name(), "A");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassPalette {
    by_class: HashMap<ObjectClass, u32>,
    by_id: Vec<ObjectClass>,
}

impl ClassPalette {
    /// Creates an empty palette.
    #[must_use]
    pub fn new() -> Self {
        ClassPalette::default()
    }

    /// Returns the id for a class, assigning the next free id on first
    /// sight.
    pub fn id_for(&mut self, class: &ObjectClass) -> u32 {
        if let Some(id) = self.by_class.get(class) {
            return *id;
        }
        self.by_id.push(class.clone());
        let id = self.by_id.len() as u32; // ids start at 1
        self.by_class.insert(class.clone(), id);
        id
    }

    /// Looks up an id without assigning.
    #[must_use]
    pub fn get(&self, class: &ObjectClass) -> Option<u32> {
        self.by_class.get(class).copied()
    }

    /// The class behind an id (`None` for background `0` or unknown ids).
    #[must_use]
    pub fn class_of(&self, id: u32) -> Option<&ObjectClass> {
        if id == 0 {
            return None;
        }
        self.by_id.get(id as usize - 1)
    }

    /// Number of registered classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether no classes are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut p = ClassPalette::new();
        assert!(p.is_empty());
        let a = p.id_for(&ObjectClass::new("A"));
        let b = p.id_for(&ObjectClass::new("B"));
        assert_eq!((a, b), (1, 2));
        assert_eq!(p.id_for(&ObjectClass::new("A")), 1);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn lookup_without_assign() {
        let mut p = ClassPalette::new();
        assert_eq!(p.get(&ObjectClass::new("A")), None);
        p.id_for(&ObjectClass::new("A"));
        assert_eq!(p.get(&ObjectClass::new("A")), Some(1));
    }

    #[test]
    fn reverse_lookup() {
        let mut p = ClassPalette::new();
        p.id_for(&ObjectClass::new("A"));
        assert_eq!(p.class_of(1).unwrap().name(), "A");
        assert_eq!(p.class_of(0), None, "background");
        assert_eq!(p.class_of(9), None);
    }
}
