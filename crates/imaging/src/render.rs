//! Painting symbolic scenes into rasters — the synthetic "original image"
//! generator.

use crate::{ClassPalette, Raster, Shape};
use be2d_geometry::Scene;

/// Renders a scene into a raster, painting every object with the same
/// shape (later objects overdraw earlier ones).
///
/// The raster has one pixel per scene coordinate unit, so MBRs map
/// exactly onto pixel blocks.
///
/// # Panics
///
/// Panics if the scene frame exceeds `usize` (not reachable for validated
/// scenes on 64-bit targets).
#[must_use]
pub fn render_scene(scene: &Scene, palette: &mut ClassPalette, shape: Shape) -> Raster {
    render_scene_with_shapes(scene, palette, &mut |_| shape)
}

/// Renders a scene with a per-object shape choice.
///
/// `shape_of` receives the object index (in scene id order) and returns
/// the silhouette to paint.
#[must_use]
pub fn render_scene_with_shapes(
    scene: &Scene,
    palette: &mut ClassPalette,
    shape_of: &mut dyn FnMut(usize) -> Shape,
) -> Raster {
    let mut raster = Raster::new(scene.width() as usize, scene.height() as usize)
        .expect("validated scenes have positive frames");
    for (i, obj) in scene.iter().enumerate() {
        let id = palette.id_for(obj.class());
        let m = obj.mbr();
        raster
            .fill_shape(
                shape_of(i),
                m.x_begin() as usize,
                m.x_end() as usize,
                m.y_begin() as usize,
                m.y_end() as usize,
                id,
            )
            .expect("validated scenes fit their frame");
    }
    raster
}

/// Renders a scene directly to ASCII art (for the demonstration system
/// and terminal debugging) without keeping the raster.
#[must_use]
pub fn scene_ascii(scene: &Scene) -> String {
    let mut palette = ClassPalette::new();
    render_scene(scene, &mut palette, Shape::Rectangle).to_ascii()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract_scene;
    use be2d_geometry::SceneBuilder;

    #[test]
    fn render_extract_roundtrip_rectangles() {
        let scene = SceneBuilder::new(40, 30)
            .object("A", (2, 10, 2, 10))
            .object("B", (15, 35, 5, 25))
            .object("C", (12, 14, 12, 29))
            .build()
            .unwrap();
        let mut palette = ClassPalette::new();
        let raster = render_scene(&scene, &mut palette, Shape::Rectangle);
        let recovered = extract_scene(&raster, &palette, 1).unwrap();
        assert_eq!(recovered.len(), 3);
        for (orig, rec) in scene.iter().zip(recovered.iter()) {
            assert_eq!(orig.class(), rec.class());
            assert_eq!(orig.mbr(), rec.mbr());
        }
    }

    #[test]
    fn roundtrip_preserves_mbr_for_all_shapes() {
        for shape in Shape::ALL {
            let scene = SceneBuilder::new(50, 50)
                .object("A", (3, 20, 3, 20))
                .object("B", (25, 45, 30, 48))
                .build()
                .unwrap();
            let mut palette = ClassPalette::new();
            let raster = render_scene(&scene, &mut palette, shape);
            let recovered = extract_scene(&raster, &palette, 1).unwrap();
            assert_eq!(recovered.len(), 2, "{shape:?}");
            for (orig, rec) in scene.iter().zip(recovered.iter()) {
                assert_eq!(orig.mbr(), rec.mbr(), "{shape:?}");
            }
        }
    }

    #[test]
    fn every_shape_is_one_component_at_awkward_aspect_ratios() {
        for shape in Shape::ALL {
            for (xe, ye) in [(30, 4), (4, 30), (3, 3), (2, 9), (29, 28)] {
                let scene = SceneBuilder::new(32, 32)
                    .object("A", (1, xe, 1, ye))
                    .build()
                    .unwrap();
                let mut palette = ClassPalette::new();
                let raster = render_scene(&scene, &mut palette, shape);
                let recovered = extract_scene(&raster, &palette, 1).unwrap();
                assert_eq!(recovered.len(), 1, "{shape:?} at ({xe},{ye}) fragmented");
                assert_eq!(
                    recovered.objects()[0].mbr(),
                    scene.objects()[0].mbr(),
                    "{shape:?} at ({xe},{ye})"
                );
            }
        }
    }

    #[test]
    fn per_object_shapes() {
        let scene = SceneBuilder::new(30, 30)
            .object("A", (0, 10, 0, 10))
            .object("B", (15, 29, 15, 29))
            .build()
            .unwrap();
        let mut palette = ClassPalette::new();
        let shapes = [Shape::Rectangle, Shape::Ellipse];
        let raster = render_scene_with_shapes(&scene, &mut palette, &mut |i| shapes[i]);
        // rectangle fills its MBR fully, ellipse does not
        assert_eq!(raster.count_id(1), 100);
        assert!(raster.count_id(2) < 14 * 14);
    }

    #[test]
    fn ascii_shows_objects() {
        let scene = SceneBuilder::new(6, 4)
            .object("A", (0, 2, 0, 2))
            .build()
            .unwrap();
        let art = scene_ascii(&scene);
        assert_eq!(art, "......\n......\naa....\naa....\n");
    }

    #[test]
    fn empty_scene_renders_blank() {
        let scene = be2d_geometry::Scene::new(4, 4).unwrap();
        let mut palette = ClassPalette::new();
        let raster = render_scene(&scene, &mut palette, Shape::Rectangle);
        assert_eq!(raster.count_id(0), 16);
        assert!(palette.is_empty());
    }
}
