//! Recognition-noise injection: simulates an imperfect segmentation
//! front end.
//!
//! The paper assumes perfect object/MBR abstraction; any real recogniser
//! mislabels pixels, drops small objects and jitters boundaries. This
//! module injects exactly those fault classes into rasters so the
//! robustness experiment (E9, `exp_noise`) can measure how retrieval
//! quality degrades with recognition quality — and how much the
//! `min_area` speckle filter recovers.

use crate::Raster;

/// A deterministic splitmix64 stream; keeps this crate free of external
/// RNG dependencies while staying reproducible.
#[derive(Debug, Clone)]
pub struct NoiseRng {
    state: u64,
}

impl NoiseRng {
    /// Creates a stream from a seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        NoiseRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Flips each background pixel to a random known class id with
/// probability `p` (salt noise), and each object pixel to background with
/// probability `p` (pepper noise).
///
/// `max_class_id` is the highest id that may be produced by salt noise
/// (use the palette size).
pub fn salt_and_pepper(raster: &mut Raster, p: f64, max_class_id: u32, rng: &mut NoiseRng) {
    if max_class_id == 0 {
        return;
    }
    for y in 0..raster.height() {
        for x in 0..raster.width() {
            let current = raster.get(x, y).expect("in range");
            if rng.chance(p) {
                let new = if current == 0 {
                    rng.below(u64::from(max_class_id)) as u32 + 1
                } else {
                    0
                };
                raster.set(x, y, new).expect("in range");
            }
        }
    }
}

/// Erodes object boundaries: every object pixel with at least one
/// background 4-neighbour is cleared with probability `p` — boundary
/// jitter that perturbs extracted MBRs by a pixel or two.
pub fn erode_boundaries(raster: &mut Raster, p: f64, rng: &mut NoiseRng) {
    let (w, h) = (raster.width(), raster.height());
    let mut to_clear = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let id = raster.get(x, y).expect("in range");
            if id == 0 {
                continue;
            }
            let on_boundary = [
                (x.wrapping_sub(1), y),
                (x + 1, y),
                (x, y.wrapping_sub(1)),
                (x, y + 1),
            ]
            .into_iter()
            .any(|(nx, ny)| nx >= w || ny >= h || raster.get(nx, ny).expect("in range") == 0);
            if on_boundary && rng.chance(p) {
                to_clear.push((x, y));
            }
        }
    }
    for (x, y) in to_clear {
        raster.set(x, y, 0).expect("in range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_raster() -> Raster {
        let mut r = Raster::new(32, 32).unwrap();
        r.fill_rect(8, 24, 8, 24, 1).unwrap();
        r
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = NoiseRng::new(7);
        let mut b = NoiseRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = NoiseRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_bounded() {
        let mut rng = NoiseRng::new(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = NoiseRng::new(2);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn zero_probability_changes_nothing() {
        let mut r = block_raster();
        let before = r.clone();
        let mut rng = NoiseRng::new(3);
        salt_and_pepper(&mut r, 0.0, 4, &mut rng);
        erode_boundaries(&mut r, 0.0, &mut rng);
        assert_eq!(r, before);
    }

    #[test]
    fn salt_and_pepper_flips_roughly_p_fraction() {
        let mut r = block_raster();
        let before = r.clone();
        let mut rng = NoiseRng::new(4);
        salt_and_pepper(&mut r, 0.1, 4, &mut rng);
        let changed = (0..32)
            .flat_map(|y| (0..32).map(move |x| (x, y)))
            .filter(|&(x, y)| r.get(x, y).unwrap() != before.get(x, y).unwrap())
            .count();
        let total = 32 * 32;
        assert!(
            changed > total / 20 && changed < total / 5,
            "changed {changed}"
        );
    }

    #[test]
    fn erosion_only_touches_boundary_pixels() {
        let mut r = block_raster();
        let mut rng = NoiseRng::new(5);
        erode_boundaries(&mut r, 1.0, &mut rng);
        // interior (one pixel in from every side) must be intact
        for y in 9..23 {
            for x in 9..23 {
                assert_eq!(r.get(x, y).unwrap(), 1, "interior pixel ({x},{y})");
            }
        }
        // with p = 1 the entire one-pixel boundary ring is gone
        assert_eq!(r.get(8, 8).unwrap(), 0);
        assert_eq!(r.get(23, 16).unwrap(), 0);
    }

    #[test]
    fn min_area_filter_absorbs_salt_noise() {
        use crate::extract_components;
        let mut r = block_raster();
        let mut rng = NoiseRng::new(6);
        salt_and_pepper(&mut r, 0.01, 1, &mut rng);
        // speckles are single pixels; the block survives a min_area of 8
        let comps = extract_components(&r, 8);
        assert_eq!(comps.len(), 1, "speckles filtered");
        // without the filter, speckles appear as objects
        assert!(extract_components(&r, 1).len() > 1);
    }
}
