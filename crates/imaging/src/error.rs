//! Error type for the imaging substrate.

use std::error::Error;
use std::fmt;

/// Errors produced while rendering or extracting rasters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImagingError {
    /// A raster was constructed with a zero dimension.
    EmptyRaster {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// A pixel access was out of bounds.
    OutOfBounds {
        /// Pixel x.
        x: usize,
        /// Pixel y.
        y: usize,
        /// Raster width.
        width: usize,
        /// Raster height.
        height: usize,
    },
    /// A raster contained a class id missing from the palette.
    UnknownClassId {
        /// The offending id.
        id: u32,
    },
    /// Extraction produced an object that failed scene validation.
    InvalidExtraction {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for ImagingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImagingError::EmptyRaster { width, height } => {
                write!(f, "raster dimensions {width}x{height} must be positive")
            }
            ImagingError::OutOfBounds {
                x,
                y,
                width,
                height,
            } => {
                write!(f, "pixel ({x}, {y}) outside {width}x{height} raster")
            }
            ImagingError::UnknownClassId { id } => {
                write!(f, "class id {id} not present in the palette")
            }
            ImagingError::InvalidExtraction { reason } => {
                write!(f, "extraction produced invalid scene: {reason}")
            }
        }
    }
}

impl Error for ImagingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let variants = [
            ImagingError::EmptyRaster {
                width: 0,
                height: 4,
            },
            ImagingError::OutOfBounds {
                x: 9,
                y: 9,
                width: 4,
                height: 4,
            },
            ImagingError::UnknownClassId { id: 7 },
            ImagingError::InvalidExtraction { reason: "x".into() },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
