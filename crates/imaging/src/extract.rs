//! Connected-component labeling and MBR extraction — the "object
//! recognition" stage feeding Algorithm 1.

use crate::{ClassPalette, ImagingError, Raster};
use be2d_geometry::{Rect, Scene};

/// One recognised component: a maximal 4-connected region of pixels
/// sharing a class id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// The raster class id of the region.
    pub class_id: u32,
    /// Number of pixels in the region.
    pub area: usize,
    /// Pixel bounding box as `(x_begin, x_end, y_begin, y_end)`,
    /// half-open — directly usable as an MBR.
    pub bbox: (i64, i64, i64, i64),
}

/// Labels all 4-connected same-class components of the raster with a
/// union–find pass, returning them sorted by `(class_id, bbox)`.
///
/// Components smaller than `min_area` pixels are dropped (speckle
/// suppression, mirroring what any real recogniser does).
#[must_use]
pub fn extract_components(raster: &Raster, min_area: usize) -> Vec<Component> {
    let (w, h) = (raster.width(), raster.height());
    let pixels = raster.pixels();
    // union-find over pixel indices
    let mut parent: Vec<u32> = (0..(w * h) as u32).collect();

    fn find(parent: &mut [u32], mut i: u32) -> u32 {
        while parent[i as usize] != i {
            parent[i as usize] = parent[parent[i as usize] as usize]; // path halving
            i = parent[i as usize];
        }
        i
    }
    fn union(parent: &mut [u32], a: u32, b: u32) {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[rb as usize] = ra;
        }
    }

    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            let id = pixels[i];
            if id == 0 {
                continue;
            }
            if x + 1 < w && pixels[i + 1] == id {
                union(&mut parent, i as u32, (i + 1) as u32);
            }
            if y + 1 < h && pixels[i + w] == id {
                union(&mut parent, i as u32, (i + w) as u32);
            }
        }
    }

    use std::collections::HashMap;
    let mut comps: HashMap<u32, Component> = HashMap::new();
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            let id = pixels[i];
            if id == 0 {
                continue;
            }
            let root = find(&mut parent, i as u32);
            let (xi, yi) = (x as i64, y as i64);
            comps
                .entry(root)
                .and_modify(|c| {
                    c.area += 1;
                    c.bbox.0 = c.bbox.0.min(xi);
                    c.bbox.1 = c.bbox.1.max(xi + 1);
                    c.bbox.2 = c.bbox.2.min(yi);
                    c.bbox.3 = c.bbox.3.max(yi + 1);
                })
                .or_insert(Component {
                    class_id: id,
                    area: 1,
                    bbox: (xi, xi + 1, yi, yi + 1),
                });
        }
    }
    let mut out: Vec<Component> = comps.into_values().filter(|c| c.area >= min_area).collect();
    out.sort_by_key(|c| (c.class_id, c.bbox));
    out
}

/// Recognises the scene in a raster: connected components become objects
/// with their pixel-bounding-box MBRs. The palette translates class ids
/// back to [`ObjectClass`](be2d_geometry::ObjectClass) names.
///
/// This is the substitute for the paper's assumed segmentation front end;
/// together with [`render_scene`](crate::render_scene) it closes the
/// render → recognise → convert loop that the integration tests verify.
///
/// # Errors
///
/// Returns [`ImagingError::UnknownClassId`] when a pixel id is missing
/// from the palette, or [`ImagingError::InvalidExtraction`] when scene
/// assembly fails.
pub fn extract_scene(
    raster: &Raster,
    palette: &ClassPalette,
    min_area: usize,
) -> Result<Scene, ImagingError> {
    let mut scene = Scene::new(raster.width() as i64, raster.height() as i64).map_err(|e| {
        ImagingError::InvalidExtraction {
            reason: e.to_string(),
        }
    })?;
    for comp in extract_components(raster, min_area) {
        let class = palette
            .class_of(comp.class_id)
            .ok_or(ImagingError::UnknownClassId { id: comp.class_id })?;
        let (xb, xe, yb, ye) = comp.bbox;
        let mbr = Rect::new(xb, xe, yb, ye).map_err(|e| ImagingError::InvalidExtraction {
            reason: e.to_string(),
        })?;
        scene
            .add(class.clone(), mbr)
            .map_err(|e| ImagingError::InvalidExtraction {
                reason: e.to_string(),
            })?;
    }
    Ok(scene)
}

#[cfg(test)]
mod tests {
    use super::*;
    use be2d_geometry::ObjectClass;

    #[test]
    fn single_block() {
        let mut r = Raster::new(10, 10).unwrap();
        r.fill_rect(2, 6, 3, 8, 1).unwrap();
        let comps = extract_components(&r, 1);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].class_id, 1);
        assert_eq!(comps[0].area, 4 * 5);
        assert_eq!(comps[0].bbox, (2, 6, 3, 8));
    }

    #[test]
    fn two_blocks_same_class_disconnected() {
        let mut r = Raster::new(10, 10).unwrap();
        r.fill_rect(0, 3, 0, 3, 1).unwrap();
        r.fill_rect(6, 9, 6, 9, 1).unwrap();
        let comps = extract_components(&r, 1);
        assert_eq!(comps.len(), 2, "disconnected regions are separate objects");
    }

    #[test]
    fn touching_blocks_same_class_merge() {
        let mut r = Raster::new(10, 10).unwrap();
        r.fill_rect(0, 3, 0, 3, 1).unwrap();
        r.fill_rect(3, 6, 0, 3, 1).unwrap();
        let comps = extract_components(&r, 1);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].bbox, (0, 6, 0, 3));
    }

    #[test]
    fn diagonal_touch_does_not_merge() {
        let mut r = Raster::new(4, 4).unwrap();
        r.set(0, 0, 1).unwrap();
        r.set(1, 1, 1).unwrap();
        assert_eq!(extract_components(&r, 1).len(), 2, "4-connectivity");
    }

    #[test]
    fn different_classes_do_not_merge() {
        let mut r = Raster::new(10, 4).unwrap();
        r.fill_rect(0, 5, 0, 4, 1).unwrap();
        r.fill_rect(5, 10, 0, 4, 2).unwrap();
        let comps = extract_components(&r, 1);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn min_area_filters_speckles() {
        let mut r = Raster::new(10, 10).unwrap();
        r.fill_rect(0, 5, 0, 5, 1).unwrap();
        r.set(9, 9, 1).unwrap();
        assert_eq!(extract_components(&r, 2).len(), 1);
        assert_eq!(extract_components(&r, 1).len(), 2);
    }

    #[test]
    fn l_shape_bbox_covers_whole_component() {
        let mut r = Raster::new(10, 10).unwrap();
        r.fill_rect(0, 2, 0, 8, 1).unwrap();
        r.fill_rect(0, 8, 0, 2, 1).unwrap();
        let comps = extract_components(&r, 1);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].bbox, (0, 8, 0, 8));
        assert_eq!(comps[0].area, 2 * 8 + 8 * 2 - 4);
    }

    #[test]
    fn extract_scene_translates_classes() {
        let mut palette = ClassPalette::new();
        let id_a = palette.id_for(&ObjectClass::new("A"));
        let id_b = palette.id_for(&ObjectClass::new("B"));
        let mut r = Raster::new(20, 20).unwrap();
        r.fill_rect(1, 5, 1, 5, id_a).unwrap();
        r.fill_rect(10, 15, 10, 18, id_b).unwrap();
        let scene = extract_scene(&r, &palette, 1).unwrap();
        assert_eq!(scene.len(), 2);
        let names: Vec<_> = scene.iter().map(|o| o.class().name().to_owned()).collect();
        assert_eq!(names, ["A", "B"]);
        assert_eq!(scene.objects()[1].mbr(), Rect::new(10, 15, 10, 18).unwrap());
    }

    #[test]
    fn extract_scene_unknown_id_fails() {
        let palette = ClassPalette::new();
        let mut r = Raster::new(5, 5).unwrap();
        r.set(0, 0, 3).unwrap();
        assert!(matches!(
            extract_scene(&r, &palette, 1),
            Err(ImagingError::UnknownClassId { id: 3 })
        ));
    }

    #[test]
    fn empty_raster_gives_empty_scene() {
        let palette = ClassPalette::new();
        let r = Raster::new(5, 5).unwrap();
        let scene = extract_scene(&r, &palette, 1).unwrap();
        assert!(scene.is_empty());
        assert_eq!(scene.width(), 5);
    }
}
