//! # be2d-imaging — the raster substrate
//!
//! The paper's Algorithm 1 assumes its input up front: *"we have
//! abstracted all objects and their MBR coordinates from that image"*
//! (§3.2). This crate supplies that front end for the reproduction, fully
//! synthetic and deterministic:
//!
//! * [`Raster`] — a class-id labelled pixel grid with shape painters
//!   ([`Shape`]: rectangle, ellipse, diamond, triangle);
//! * [`render_scene`] — paints a symbolic [`Scene`](be2d_geometry::Scene) into a raster (the
//!   "original image" of the paper);
//! * [`extract_scene`] — 4-connectivity connected-component labeling
//!   (union–find) over the class layers, producing the recognised objects
//!   and their MBRs — the input to `be2d_core::convert_scene`;
//! * PPM export and ASCII art for the §5 demonstration system.
//!
//! The substitution is documented in `DESIGN.md`: any recogniser emitting
//! `(class, MBR)` tuples is equivalent as far as the spatial-relation
//! model is concerned, so a synthetic renderer + labeller exercises the
//! identical code path without proprietary image data.
//!
//! # Example: render → extract → convert round trip
//!
//! ```
//! use be2d_imaging::{render_scene, extract_scene, ClassPalette, Shape};
//! use be2d_geometry::SceneBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scene = SceneBuilder::new(64, 64)
//!     .object("A", (5, 20, 5, 20))
//!     .object("B", (30, 60, 30, 50))
//!     .build()?;
//! let mut palette = ClassPalette::new();
//! let raster = render_scene(&scene, &mut palette, Shape::Rectangle);
//! let recovered = extract_scene(&raster, &palette, 1)?;
//! assert_eq!(recovered.len(), 2);
//! assert_eq!(recovered.objects()[0].mbr(), scene.objects()[0].mbr());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod extract;
/// Recognition-noise injection for robustness experiments.
pub mod noise;
mod palette;
mod raster;
mod render;

pub use error::ImagingError;
pub use extract::{extract_components, extract_scene, Component};
pub use noise::{erode_boundaries, salt_and_pepper, NoiseRng};
pub use palette::ClassPalette;
pub use raster::{Raster, Shape};
pub use render::{render_scene, render_scene_with_shapes, scene_ascii};
