//! Class-labelled pixel grids and shape painters.

use crate::ImagingError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The icon silhouette used when painting an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Shape {
    /// Fill the whole MBR. Extraction recovers the MBR exactly.
    #[default]
    Rectangle,
    /// The ellipse inscribed in the MBR.
    Ellipse,
    /// The diamond (rhombus) inscribed in the MBR.
    Diamond,
    /// An upward-pointing isosceles triangle filling the MBR base.
    Triangle,
}

impl Shape {
    /// All shapes, for round-robin assignment in workloads.
    pub const ALL: [Shape; 4] = [
        Shape::Rectangle,
        Shape::Ellipse,
        Shape::Diamond,
        Shape::Triangle,
    ];
}

/// A `width × height` grid of class ids; `0` is background.
///
/// Row `0` is the *bottom* row, matching the scene coordinate system
/// (origin bottom-left, y up). Pixel `(x, y)` covers the unit cell
/// `[x, x+1) × [y, y+1)` of the scene plane, so an MBR
/// `[xb, xe) × [yb, ye)` corresponds exactly to the pixel block
/// `x ∈ xb..xe, y ∈ yb..ye`.
///
/// # Example
///
/// ```
/// use be2d_imaging::Raster;
///
/// # fn main() -> Result<(), be2d_imaging::ImagingError> {
/// let mut r = Raster::new(8, 8)?;
/// r.fill_rect(1, 4, 1, 3, 7)?;
/// assert_eq!(r.get(1, 1)?, 7);
/// assert_eq!(r.get(4, 1)?, 0, "end coordinate exclusive");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Raster {
    width: usize,
    height: usize,
    pixels: Vec<u32>,
}

impl Raster {
    /// Creates a background-only raster.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::EmptyRaster`] when a dimension is zero.
    pub fn new(width: usize, height: usize) -> Result<Self, ImagingError> {
        if width == 0 || height == 0 {
            return Err(ImagingError::EmptyRaster { width, height });
        }
        Ok(Raster {
            width,
            height,
            pixels: vec![0; width * height],
        })
    }

    /// Raster width in pixels.
    #[must_use]
    pub const fn width(&self) -> usize {
        self.width
    }

    /// Raster height in pixels.
    #[must_use]
    pub const fn height(&self) -> usize {
        self.height
    }

    /// Reads the class id at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::OutOfBounds`] outside the grid.
    pub fn get(&self, x: usize, y: usize) -> Result<u32, ImagingError> {
        self.index(x, y).map(|i| self.pixels[i])
    }

    /// Writes the class id at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::OutOfBounds`] outside the grid.
    pub fn set(&mut self, x: usize, y: usize, id: u32) -> Result<(), ImagingError> {
        let i = self.index(x, y)?;
        self.pixels[i] = id;
        Ok(())
    }

    fn index(&self, x: usize, y: usize) -> Result<usize, ImagingError> {
        if x >= self.width || y >= self.height {
            return Err(ImagingError::OutOfBounds {
                x,
                y,
                width: self.width,
                height: self.height,
            });
        }
        Ok(y * self.width + x)
    }

    /// Raw pixels, row-major from the bottom row.
    #[must_use]
    pub fn pixels(&self) -> &[u32] {
        &self.pixels
    }

    /// Number of pixels carrying the given class id.
    #[must_use]
    pub fn count_id(&self, id: u32) -> usize {
        self.pixels.iter().filter(|p| **p == id).count()
    }

    /// Fills the half-open rectangle `[xb, xe) × [yb, ye)`.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::OutOfBounds`] when the rectangle exceeds
    /// the raster (nothing is painted on error).
    pub fn fill_rect(
        &mut self,
        xb: usize,
        xe: usize,
        yb: usize,
        ye: usize,
        id: u32,
    ) -> Result<(), ImagingError> {
        if xe > self.width || ye > self.height {
            return Err(ImagingError::OutOfBounds {
                x: xe,
                y: ye,
                width: self.width,
                height: self.height,
            });
        }
        for y in yb..ye {
            for x in xb..xe {
                self.pixels[y * self.width + x] = id;
            }
        }
        Ok(())
    }

    /// Paints a shape filling the MBR `[xb, xe) × [yb, ye)`.
    ///
    /// Every shape is drawn so that the painted region is 4-connected and
    /// its pixel bounding box equals the requested MBR, keeping
    /// render→extract round trips exact. This is achieved by always
    /// painting the shape's *spine*: the full-width row the continuous
    /// shape spans (the mid row for ellipse/diamond, the base for the
    /// triangle) and the full-height centre column.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::OutOfBounds`] when the MBR exceeds the
    /// raster.
    pub fn fill_shape(
        &mut self,
        shape: Shape,
        xb: usize,
        xe: usize,
        yb: usize,
        ye: usize,
        id: u32,
    ) -> Result<(), ImagingError> {
        if xe > self.width || ye > self.height || xb >= xe || yb >= ye {
            return Err(ImagingError::OutOfBounds {
                x: xe,
                y: ye,
                width: self.width,
                height: self.height,
            });
        }
        match shape {
            Shape::Rectangle => self.fill_rect(xb, xe, yb, ye, id),
            Shape::Ellipse => {
                let (w, h) = ((xe - xb) as f64, (ye - yb) as f64);
                let (cx, cy) = (xb as f64 + w / 2.0, yb as f64 + h / 2.0);
                let (rx, ry) = (w / 2.0, h / 2.0);
                for y in yb..ye {
                    for x in xb..xe {
                        let dx = (x as f64 + 0.5 - cx) / rx;
                        let dy = (y as f64 + 0.5 - cy) / ry;
                        if dx * dx + dy * dy <= 1.0 {
                            self.pixels[y * self.width + x] = id;
                        }
                    }
                }
                self.fill_spine(xb, xe, yb, ye, id, (yb + ye - 1) / 2);
                Ok(())
            }
            Shape::Diamond => {
                let (w, h) = ((xe - xb) as f64, (ye - yb) as f64);
                let (cx, cy) = (xb as f64 + w / 2.0, yb as f64 + h / 2.0);
                for y in yb..ye {
                    for x in xb..xe {
                        let dx = (x as f64 + 0.5 - cx).abs() / (w / 2.0);
                        let dy = (y as f64 + 0.5 - cy).abs() / (h / 2.0);
                        if dx + dy <= 1.0 {
                            self.pixels[y * self.width + x] = id;
                        }
                    }
                }
                self.fill_spine(xb, xe, yb, ye, id, (yb + ye - 1) / 2);
                Ok(())
            }
            Shape::Triangle => {
                let (w, h) = ((xe - xb) as f64, (ye - yb) as f64);
                let cx = xb as f64 + w / 2.0;
                for y in yb..ye {
                    // at the base (y = yb) the full width is filled,
                    // shrinking linearly to a point at the top
                    let t = (y as f64 + 0.5 - yb as f64) / h;
                    let half = (1.0 - t) * w / 2.0;
                    for x in xb..xe {
                        if (x as f64 + 0.5 - cx).abs() <= half {
                            self.pixels[y * self.width + x] = id;
                        }
                    }
                }
                // the triangle's spine is its base plus the median
                self.fill_spine(xb, xe, yb, ye, id, yb);
                Ok(())
            }
        }
    }

    /// Paints the full-width `spine_row` and the full-height centre
    /// column. The continuous ellipse/diamond/triangle all contain these
    /// segments, so this only corrects half-pixel discretisation losses —
    /// and it guarantees connectivity plus an exact bounding box.
    fn fill_spine(
        &mut self,
        xb: usize,
        xe: usize,
        yb: usize,
        ye: usize,
        id: u32,
        spine_row: usize,
    ) {
        let mx = (xb + xe - 1) / 2;
        for x in xb..xe {
            self.pixels[spine_row * self.width + x] = id;
        }
        for y in yb..ye {
            self.pixels[y * self.width + mx] = id;
        }
    }

    /// Serialises the raster as a binary PPM (P6) image, with colors
    /// assigned deterministically from class ids. Background is white.
    #[must_use]
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.pixels.len() * 3 + 32);
        out.extend_from_slice(format!("P6\n{} {}\n255\n", self.width, self.height).as_bytes());
        // PPM rows are top-down; our rows are bottom-up.
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                let id = self.pixels[y * self.width + x];
                out.extend_from_slice(&Self::color(id));
            }
        }
        out
    }

    /// Deterministic color for a class id (background `0` is white).
    #[must_use]
    pub fn color(id: u32) -> [u8; 3] {
        if id == 0 {
            return [255, 255, 255];
        }
        // splitmix-style hash for well-spread colors
        let mut z = u64::from(id).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let z = z ^ (z >> 31);
        [
            (z & 0xff) as u8 | 0x20,
            ((z >> 8) & 0xff) as u8 | 0x20,
            ((z >> 16) & 0xff) as u8 | 0x20,
        ]
    }

    /// Renders the raster as ASCII art, one character per pixel (top row
    /// first): `.` for background, letters cycling by class id.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let mut s = String::with_capacity((self.width + 1) * self.height);
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                let id = self.pixels[y * self.width + x];
                s.push(if id == 0 {
                    '.'
                } else {
                    char::from(b'a' + ((id - 1) % 26) as u8)
                });
            }
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for Raster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbox_of(r: &Raster, id: u32) -> Option<(usize, usize, usize, usize)> {
        let mut bb: Option<(usize, usize, usize, usize)> = None;
        for y in 0..r.height() {
            for x in 0..r.width() {
                if r.get(x, y).unwrap() == id {
                    bb = Some(match bb {
                        None => (x, x + 1, y, y + 1),
                        Some((xb, xe, yb, ye)) => {
                            (xb.min(x), xe.max(x + 1), yb.min(y), ye.max(y + 1))
                        }
                    });
                }
            }
        }
        bb
    }

    #[test]
    fn construction_and_bounds() {
        assert!(Raster::new(0, 5).is_err());
        let mut r = Raster::new(4, 3).unwrap();
        assert_eq!((r.width(), r.height()), (4, 3));
        assert!(r.get(4, 0).is_err());
        assert!(r.set(0, 3, 1).is_err());
        r.set(3, 2, 9).unwrap();
        assert_eq!(r.get(3, 2).unwrap(), 9);
    }

    #[test]
    fn fill_rect_half_open() {
        let mut r = Raster::new(8, 8).unwrap();
        r.fill_rect(2, 5, 1, 4, 3).unwrap();
        assert_eq!(r.count_id(3), 9);
        assert_eq!(r.get(2, 1).unwrap(), 3);
        assert_eq!(r.get(4, 3).unwrap(), 3);
        assert_eq!(r.get(5, 3).unwrap(), 0);
        assert_eq!(r.get(4, 4).unwrap(), 0);
        assert!(r.fill_rect(0, 9, 0, 2, 1).is_err());
    }

    #[test]
    fn all_shapes_span_their_mbr() {
        for shape in Shape::ALL {
            for (xb, xe, yb, ye) in [(0, 10, 0, 6), (3, 4, 2, 9), (1, 3, 1, 3), (0, 2, 0, 2)] {
                let mut r = Raster::new(12, 12).unwrap();
                r.fill_shape(shape, xb, xe, yb, ye, 5).unwrap();
                assert_eq!(
                    bbox_of(&r, 5),
                    Some((xb, xe, yb, ye)),
                    "{shape:?} MBR ({xb},{xe},{yb},{ye})"
                );
            }
        }
    }

    #[test]
    fn shapes_stay_inside_mbr() {
        for shape in Shape::ALL {
            let mut r = Raster::new(16, 16).unwrap();
            r.fill_shape(shape, 4, 12, 5, 11, 2).unwrap();
            for y in 0..16 {
                for x in 0..16 {
                    if r.get(x, y).unwrap() == 2 {
                        assert!((4..12).contains(&x) && (5..11).contains(&y), "{shape:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn ellipse_is_smaller_than_rect() {
        let mut rect = Raster::new(20, 20).unwrap();
        rect.fill_shape(Shape::Rectangle, 0, 20, 0, 20, 1).unwrap();
        let mut ell = Raster::new(20, 20).unwrap();
        ell.fill_shape(Shape::Ellipse, 0, 20, 0, 20, 1).unwrap();
        assert!(ell.count_id(1) < rect.count_id(1));
        assert!(
            ell.count_id(1) > rect.count_id(1) / 2,
            "ellipse ~ π/4 of rect"
        );
    }

    #[test]
    fn fill_shape_validates() {
        let mut r = Raster::new(8, 8).unwrap();
        assert!(r.fill_shape(Shape::Ellipse, 0, 9, 0, 4, 1).is_err());
        assert!(r.fill_shape(Shape::Diamond, 3, 3, 0, 4, 1).is_err());
    }

    #[test]
    fn ppm_has_header_and_size() {
        let mut r = Raster::new(3, 2).unwrap();
        r.set(0, 0, 1).unwrap();
        let ppm = r.to_ppm();
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(ppm.len(), b"P6\n3 2\n255\n".len() + 3 * 2 * 3);
        // bottom-left pixel is the LAST row in PPM order
        let body = &ppm[b"P6\n3 2\n255\n".len()..];
        assert_ne!(&body[9..12], &[255, 255, 255], "painted pixel not white");
        assert_eq!(&body[0..3], &[255, 255, 255], "top row is background");
    }

    #[test]
    fn colors_are_deterministic_and_distinct() {
        assert_eq!(Raster::color(0), [255, 255, 255]);
        assert_eq!(Raster::color(7), Raster::color(7));
        assert_ne!(Raster::color(1), Raster::color(2));
    }

    #[test]
    fn ascii_renders_top_down() {
        let mut r = Raster::new(3, 2).unwrap();
        r.set(0, 0, 1).unwrap(); // bottom-left => last ASCII row
        r.set(2, 1, 2).unwrap(); // top-right => first ASCII row
        assert_eq!(r.to_ascii(), "..b\na..\n");
        assert_eq!(r.to_string(), r.to_ascii());
    }
}
