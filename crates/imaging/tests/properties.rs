//! Property tests of the raster substrate: render→extract round trips
//! and noise behaviour on randomised scenes.

use be2d_geometry::{ObjectClass, Rect, Scene};
use be2d_imaging::{
    erode_boundaries, extract_components, extract_scene, render_scene, salt_and_pepper,
    ClassPalette, NoiseRng, Raster, Shape,
};
use proptest::prelude::*;

const CLASS_NAMES: [&str; 4] = ["A", "B", "C", "D"];

/// Scenes with non-overlapping, non-touching rectangles (1px halo), the
/// regime where recognition is exact.
fn arb_sparse_scene() -> impl Strategy<Value = Scene> {
    prop::collection::vec((0usize..CLASS_NAMES.len(), 0usize..5, 0usize..4), 0..10).prop_map(
        |cells| {
            // place objects on an 8-column x 6-row grid of 12x12 cells in
            // a 100x80 frame; duplicate cells collapse via a set
            let mut scene = Scene::new(100, 80).expect("frame");
            let mut used = std::collections::HashSet::new();
            for (class_idx, col, row) in cells {
                if !used.insert((col, row)) {
                    continue;
                }
                let (x0, y0) = (col as i64 * 12 + 1, row as i64 * 12 + 1);
                scene
                    .add(
                        ObjectClass::new(CLASS_NAMES[class_idx]),
                        Rect::new(x0, x0 + 10, y0, y0 + 10).expect("cell rect"),
                    )
                    .expect("fits");
            }
            scene
        },
    )
}

proptest! {
    /// For sparse rectangle scenes the pipeline is lossless: same object
    /// count, same classes, identical MBRs (order may differ).
    #[test]
    fn render_extract_is_lossless(scene in arb_sparse_scene()) {
        let mut palette = ClassPalette::new();
        let raster = render_scene(&scene, &mut palette, Shape::Rectangle);
        let recovered = extract_scene(&raster, &palette, 1).expect("extraction");
        prop_assert_eq!(recovered.len(), scene.len());
        let key = |s: &Scene| {
            let mut v: Vec<_> = s
                .iter()
                .map(|o| (o.class().name().to_owned(), o.mbr()))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(key(&recovered), key(&scene));
    }

    /// Every painted shape stays inside its MBR and spans it exactly,
    /// regardless of aspect ratio.
    #[test]
    fn shapes_span_mbr(
        shape_idx in 0usize..4,
        xb in 0usize..20,
        yb in 0usize..20,
        w in 1usize..20,
        h in 1usize..20,
    ) {
        let shape = Shape::ALL[shape_idx];
        let mut raster = Raster::new(48, 48).expect("raster");
        raster.fill_shape(shape, xb, xb + w, yb, yb + h, 9).expect("paint");
        let comps = extract_components(&raster, 1);
        prop_assert_eq!(comps.len(), 1, "{:?} fragmented", shape);
        prop_assert_eq!(
            comps[0].bbox,
            (xb as i64, (xb + w) as i64, yb as i64, (yb + h) as i64)
        );
    }

    /// Noise determinism: the same seed corrupts identically; different
    /// seeds differ (for non-trivial probability).
    #[test]
    fn noise_is_deterministic(seed in any::<u64>()) {
        let base = {
            let mut r = Raster::new(32, 32).expect("raster");
            r.fill_rect(4, 28, 4, 28, 1).expect("paint");
            r
        };
        let corrupt = |s: u64| {
            let mut r = base.clone();
            let mut rng = NoiseRng::new(s);
            salt_and_pepper(&mut r, 0.05, 3, &mut rng);
            erode_boundaries(&mut r, 0.5, &mut rng);
            r
        };
        prop_assert_eq!(corrupt(seed), corrupt(seed));
    }

    /// Erosion only ever clears pixels (monotone shrinking), so the
    /// extracted MBR never grows.
    #[test]
    fn erosion_never_grows_mbr(seed in any::<u64>(), rounds in 1usize..4) {
        let mut raster = Raster::new(40, 40).expect("raster");
        raster.fill_rect(8, 32, 10, 30, 1).expect("paint");
        let before = extract_components(&raster, 1)[0].bbox;
        let mut rng = NoiseRng::new(seed);
        for _ in 0..rounds {
            erode_boundaries(&mut raster, 0.6, &mut rng);
        }
        match extract_components(&raster, 1).first() {
            Some(comp) => {
                let after = comp.bbox;
                prop_assert!(after.0 >= before.0 && after.1 <= before.1);
                prop_assert!(after.2 >= before.2 && after.3 <= before.3);
            }
            None => { /* fully eroded is legal */ }
        }
    }
}
