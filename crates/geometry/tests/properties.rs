//! Property-based tests of the geometric substrate: Allen-relation
//! algebra and the D4 group action.

use be2d_geometry::{AllenRelation, Interval, Point, Rect, Transform};
use proptest::prelude::*;

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0i64..200, 1i64..60).prop_map(|(b, len)| Interval::new(b, b + len).expect("non-empty"))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_interval(), arb_interval()).prop_map(|(x, y)| Rect::from_intervals(x, y))
}

proptest! {
    /// classify is antisymmetric through `inverse` and consistent with
    /// the interval predicates.
    #[test]
    fn allen_classify_laws(a in arb_interval(), b in arb_interval()) {
        let r = AllenRelation::classify(&a, &b);
        prop_assert_eq!(r.inverse(), AllenRelation::classify(&b, &a));
        prop_assert_eq!(r.inverse().inverse(), r);
        prop_assert_eq!(r.is_overlapping(), a.overlaps(&b));
        prop_assert_eq!(r == AllenRelation::Equal, a == b);
        // category is stable under double mirroring
        prop_assert_eq!(r.mirrored().mirrored(), r);
    }

    /// Mirroring inside a common extent maps the relation through
    /// `mirrored`.
    #[test]
    fn allen_mirror_matches_geometry(a in arb_interval(), b in arb_interval()) {
        let extent = a.end().max(b.end()) + 10;
        let rm = AllenRelation::classify(&a.mirrored(extent), &b.mirrored(extent));
        prop_assert_eq!(AllenRelation::classify(&a, &b).mirrored(), rm);
    }

    /// Interval set algebra: intersection is the largest common
    /// subinterval; union MBR contains both.
    #[test]
    fn interval_lattice(a in arb_interval(), b in arb_interval()) {
        match a.intersection(&b) {
            Some(i) => {
                prop_assert!(a.contains(&i) && b.contains(&i));
                prop_assert!(a.overlaps(&b));
                prop_assert_eq!(i.length() <= a.length().min(b.length()), true);
            }
            None => prop_assert!(!a.overlaps(&b)),
        }
    }

    /// The D4 action on rectangles: group composition, inverse, identity,
    /// and frame preservation.
    #[test]
    fn d4_group_action(r in arb_rect(), a in 0usize..8, b in 0usize..8) {
        let (w, h) = (300i64, 300i64);
        prop_assume!(r.x_end() <= w && r.y_end() <= h);
        let (ta, tb) = (Transform::ALL[a], Transform::ALL[b]);

        // composition
        let step = tb.apply_rect(
            ta.apply_rect(r, w, h),
            if ta.swaps_axes() { h } else { w },
            if ta.swaps_axes() { w } else { h },
        );
        let composed = ta.then(tb).apply_rect(r, w, h);
        prop_assert_eq!(step, composed);

        // inverse
        let (w1, h1) = if ta.swaps_axes() { (h, w) } else { (w, h) };
        prop_assert_eq!(ta.inverse().apply_rect(ta.apply_rect(r, w, h), w1, h1), r);

        // area and fit preservation
        let out = ta.apply_rect(r, w, h);
        prop_assert_eq!(out.area(), r.area());
        prop_assert!(out.x_begin() >= 0 && out.x_end() <= w1);
        prop_assert!(out.y_begin() >= 0 && out.y_end() <= h1);
    }

    /// Point and rect transforms agree: the transformed rect is the MBR
    /// of the transformed corner points.
    #[test]
    fn point_rect_transform_agreement(r in arb_rect(), a in 0usize..8) {
        let (w, h) = (300i64, 300i64);
        prop_assume!(r.x_end() <= w && r.y_end() <= h);
        let t = Transform::ALL[a];
        let corners = [
            Point::new(r.x_begin(), r.y_begin()),
            Point::new(r.x_end(), r.y_begin()),
            Point::new(r.x_begin(), r.y_end()),
            Point::new(r.x_end(), r.y_end()),
        ];
        let moved: Vec<Point> = corners.iter().map(|&p| t.apply_point(p, w, h)).collect();
        let xs: Vec<i64> = moved.iter().map(|p| p.x).collect();
        let ys: Vec<i64> = moved.iter().map(|p| p.y).collect();
        let mbr = Rect::new(
            *xs.iter().min().expect("4 corners"),
            *xs.iter().max().expect("4 corners"),
            *ys.iter().min().expect("4 corners"),
            *ys.iter().max().expect("4 corners"),
        )
        .expect("non-degenerate");
        prop_assert_eq!(mbr, t.apply_rect(r, w, h));
    }

    /// Orthogonal relations of transformed rect pairs stay consistent:
    /// the 180° rotation mirrors both axes.
    #[test]
    fn rotate180_mirrors_orthogonal_relation(a in arb_rect(), b in arb_rect()) {
        let (w, h) = (300i64, 300i64);
        prop_assume!(a.x_end() <= w && a.y_end() <= h && b.x_end() <= w && b.y_end() <= h);
        let t = Transform::Rotate180;
        let before = a.orthogonal_relation(&b);
        let after = t.apply_rect(a, w, h).orthogonal_relation(&t.apply_rect(b, w, h));
        prop_assert_eq!(after.x, before.x.mirrored());
        prop_assert_eq!(after.y, before.y.mirrored());
    }
}
