//! Integer points in the image plane.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the image plane with integer coordinates.
///
/// The coordinate system follows the paper's convention: the origin is the
/// bottom-left corner of the image frame, `x` grows rightwards and `y`
/// grows upwards. All spatial-relation reasoning in the workspace depends
/// only on coordinate *order*, so exact integer arithmetic suffices.
///
/// # Example
///
/// ```
/// use be2d_geometry::Point;
///
/// let p = Point::new(3, 4);
/// assert_eq!(p.x, 3);
/// assert_eq!(p.y, 4);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate (grows rightwards).
    pub x: i64,
    /// Vertical coordinate (grows upwards).
    pub y: i64,
}

impl Point {
    /// Creates a new point.
    ///
    /// ```
    /// use be2d_geometry::Point;
    /// assert_eq!(Point::new(1, 2), Point { x: 1, y: 2 });
    /// ```
    #[must_use]
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)` — the bottom-left corner of every image frame.
    pub const ORIGIN: Point = Point::new(0, 0);

    /// Component-wise translation by `(dx, dy)`.
    ///
    /// ```
    /// use be2d_geometry::Point;
    /// assert_eq!(Point::new(1, 2).translated(3, -1), Point::new(4, 1));
    /// ```
    #[must_use]
    pub const fn translated(self, dx: i64, dy: i64) -> Self {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Manhattan (L1) distance to `other`; useful for jitter workloads.
    ///
    /// ```
    /// use be2d_geometry::Point;
    /// assert_eq!(Point::new(0, 0).manhattan_distance(Point::new(3, 4)), 7);
    /// ```
    #[must_use]
    pub const fn manhattan_distance(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = Point::new(-2, 9);
        assert_eq!(p.x, -2);
        assert_eq!(p.y, 9);
        assert_eq!(Point::default(), Point::ORIGIN);
    }

    #[test]
    fn translation_composes() {
        let p = Point::new(1, 1);
        assert_eq!(p.translated(2, 3).translated(-2, -3), p);
    }

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Point::new(5, -7);
        let b = Point::new(-1, 2);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        assert_eq!(a.manhattan_distance(a), 0);
    }

    #[test]
    fn display_formats_as_tuple() {
        assert_eq!(Point::new(3, 4).to_string(), "(3, 4)");
    }

    #[test]
    fn from_tuple() {
        let p: Point = (7, 8).into();
        assert_eq!(p, Point::new(7, 8));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Point::new(1, 9) < Point::new(2, 0));
        assert!(Point::new(1, 1) < Point::new(1, 2));
    }
}
