//! The dihedral group D4 acting on image frames.
//!
//! §4 of the paper claims that the similarity retrieval of the 90/180/270°
//! clockwise rotations and the x-/y-axis reflections of an image reduces to
//! *string reversal* on the 2D BE-string. This module provides the
//! geometric side of that claim: the eight symmetries of the rectangle,
//! applied exactly to points and MBRs. `be2d-core` implements the symbolic
//! side and property-tests that the two commute.

use crate::{Point, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A symmetry of the image frame: one of the eight elements of the dihedral
/// group D4.
///
/// Rotations are **clockwise** (the paper's convention) in the math-style
/// coordinate system (origin bottom-left, y up). The two diagonal
/// reflections complete the group so that composition is closed; the paper
/// only discusses the six non-trivial axis-aligned elements, which are the
/// rotations plus [`ReflectX`](Transform::ReflectX) /
/// [`ReflectY`](Transform::ReflectY).
///
/// # Example
///
/// ```
/// use be2d_geometry::{Transform, Point};
///
/// // Rotating the bottom-left region of a 100x50 frame 90° clockwise
/// // lands it in the top-left of the new 50x100 frame.
/// let p = Transform::Rotate90.apply_point(Point::new(10, 5), 100, 50);
/// assert_eq!(p, Point::new(5, 90));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Transform {
    /// The identity: no change.
    #[default]
    Identity,
    /// 90° clockwise rotation; swaps the frame dimensions.
    Rotate90,
    /// 180° rotation.
    Rotate180,
    /// 270° clockwise (= 90° counter-clockwise) rotation; swaps dimensions.
    Rotate270,
    /// Reflection about the x-axis (vertical flip, `y ↦ H − y`).
    ReflectX,
    /// Reflection about the y-axis (horizontal flip, `x ↦ W − x`).
    ReflectY,
    /// Reflection about the main diagonal (`(x, y) ↦ (y, x)`); swaps dims.
    Transpose,
    /// Reflection about the anti-diagonal; swaps dimensions.
    AntiTranspose,
}

impl Transform {
    /// All eight group elements.
    pub const ALL: [Transform; 8] = [
        Transform::Identity,
        Transform::Rotate90,
        Transform::Rotate180,
        Transform::Rotate270,
        Transform::ReflectX,
        Transform::ReflectY,
        Transform::Transpose,
        Transform::AntiTranspose,
    ];

    /// The six non-identity elements the paper discusses (three rotations,
    /// two axis reflections) plus identity — i.e. `ALL` without the diagonal
    /// reflections.
    pub const PAPER_SET: [Transform; 6] = [
        Transform::Identity,
        Transform::Rotate90,
        Transform::Rotate180,
        Transform::Rotate270,
        Transform::ReflectX,
        Transform::ReflectY,
    ];

    /// Whether this element exchanges the x- and y-axes (and therefore the
    /// frame dimensions).
    #[must_use]
    pub const fn swaps_axes(self) -> bool {
        matches!(
            self,
            Transform::Rotate90
                | Transform::Rotate270
                | Transform::Transpose
                | Transform::AntiTranspose
        )
    }

    /// Decomposes into `(k, f)` such that the element equals "reflect about
    /// the y-axis `f` times, then rotate `k × 90°` clockwise".
    const fn to_kf(self) -> (u8, bool) {
        match self {
            Transform::Identity => (0, false),
            Transform::Rotate90 => (1, false),
            Transform::Rotate180 => (2, false),
            Transform::Rotate270 => (3, false),
            Transform::ReflectY => (0, true),
            Transform::Transpose => (1, true),
            Transform::ReflectX => (2, true),
            Transform::AntiTranspose => (3, true),
        }
    }

    const fn from_kf(k: u8, f: bool) -> Transform {
        match (k % 4, f) {
            (0, false) => Transform::Identity,
            (1, false) => Transform::Rotate90,
            (2, false) => Transform::Rotate180,
            (_, false) => Transform::Rotate270,
            (0, true) => Transform::ReflectY,
            (1, true) => Transform::Transpose,
            (2, true) => Transform::ReflectX,
            (_, true) => Transform::AntiTranspose,
        }
    }

    /// Group composition: the element equivalent to applying `self` first
    /// and `next` second.
    ///
    /// ```
    /// use be2d_geometry::Transform;
    /// assert_eq!(Transform::Rotate90.then(Transform::Rotate90), Transform::Rotate180);
    /// assert_eq!(Transform::ReflectX.then(Transform::ReflectX), Transform::Identity);
    /// ```
    #[must_use]
    pub const fn then(self, next: Transform) -> Transform {
        let (k1, f1) = self.to_kf();
        let (k2, f2) = next.to_kf();
        // next ∘ self = r^k2 s^f2 r^k1 s^f1 = r^(k2 ± k1) s^(f1 xor f2),
        // using s r = r⁻¹ s.
        let k1_adj = if f2 { 4 - k1 } else { k1 };
        Transform::from_kf((k2 + k1_adj) % 4, f1 ^ f2)
    }

    /// The inverse element.
    ///
    /// ```
    /// use be2d_geometry::Transform;
    /// assert_eq!(Transform::Rotate90.inverse(), Transform::Rotate270);
    /// assert_eq!(Transform::Transpose.inverse(), Transform::Transpose);
    /// ```
    #[must_use]
    pub const fn inverse(self) -> Transform {
        let (k, f) = self.to_kf();
        if f {
            self // reflections are involutions
        } else {
            Transform::from_kf((4 - k) % 4, false)
        }
    }

    /// Applies the transform to a point of a `width × height` frame.
    ///
    /// The result lives in the transformed frame (dimensions swapped when
    /// [`swaps_axes`](Transform::swaps_axes) is true).
    #[must_use]
    pub const fn apply_point(self, p: Point, width: i64, height: i64) -> Point {
        let (x, y) = (p.x, p.y);
        match self {
            Transform::Identity => Point::new(x, y),
            Transform::Rotate90 => Point::new(y, width - x),
            Transform::Rotate180 => Point::new(width - x, height - y),
            Transform::Rotate270 => Point::new(height - y, x),
            Transform::ReflectX => Point::new(x, height - y),
            Transform::ReflectY => Point::new(width - x, y),
            Transform::Transpose => Point::new(y, x),
            Transform::AntiTranspose => Point::new(height - y, width - x),
        }
    }

    /// Applies the transform to an MBR of a `width × height` frame.
    #[must_use]
    pub fn apply_rect(self, r: Rect, width: i64, height: i64) -> Rect {
        let (x, y) = (r.x(), r.y());
        match self {
            Transform::Identity => r,
            Transform::Rotate90 => Rect::from_intervals(y, x.mirrored(width)),
            Transform::Rotate180 => Rect::from_intervals(x.mirrored(width), y.mirrored(height)),
            Transform::Rotate270 => Rect::from_intervals(y.mirrored(height), x),
            Transform::ReflectX => Rect::from_intervals(x, y.mirrored(height)),
            Transform::ReflectY => Rect::from_intervals(x.mirrored(width), y),
            Transform::Transpose => Rect::from_intervals(y, x),
            Transform::AntiTranspose => Rect::from_intervals(y.mirrored(height), x.mirrored(width)),
        }
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Transform::Identity => "identity",
            Transform::Rotate90 => "rotate-90",
            Transform::Rotate180 => "rotate-180",
            Transform::Rotate270 => "rotate-270",
            Transform::ReflectX => "reflect-x",
            Transform::ReflectY => "reflect-y",
            Transform::Transpose => "transpose",
            Transform::AntiTranspose => "anti-transpose",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Applies `t` to a rect and also returns the transformed frame size.
    fn apply(t: Transform, r: Rect, w: i64, h: i64) -> (Rect, i64, i64) {
        let out = t.apply_rect(r, w, h);
        let (nw, nh) = if t.swaps_axes() { (h, w) } else { (w, h) };
        (out, nw, nh)
    }

    fn sample_rect() -> Rect {
        Rect::new(10, 30, 5, 15).unwrap()
    }

    #[test]
    fn rotate90_moves_corners_correctly() {
        // 100x50 frame; object near bottom-left ends near top-left.
        let (r, nw, nh) = apply(Transform::Rotate90, sample_rect(), 100, 50);
        assert_eq!((nw, nh), (50, 100));
        assert_eq!(r, Rect::new(5, 15, 70, 90).unwrap());
    }

    #[test]
    fn apply_point_stays_in_new_frame() {
        let (w, h) = (100, 50);
        for t in Transform::ALL {
            let (nw, nh) = if t.swaps_axes() { (h, w) } else { (w, h) };
            for p in [Point::new(0, 0), Point::new(100, 50), Point::new(37, 12)] {
                let q = t.apply_point(p, w, h);
                assert!(
                    q.x >= 0 && q.x <= nw && q.y >= 0 && q.y <= nh,
                    "{t}: {p} -> {q}"
                );
            }
        }
    }

    #[test]
    fn composition_matches_sequential_application() {
        let (w, h) = (100, 50);
        let r = sample_rect();
        for a in Transform::ALL {
            for b in Transform::ALL {
                let (r1, w1, h1) = apply(a, r, w, h);
                let (r2, _, _) = apply(b, r1, w1, h1);
                let (rc, _, _) = apply(a.then(b), r, w, h);
                assert_eq!(r2, rc, "{a} then {b}");
            }
        }
    }

    #[test]
    fn inverse_undoes() {
        let (w, h) = (100, 50);
        let r = sample_rect();
        for t in Transform::ALL {
            let (r1, w1, h1) = apply(t, r, w, h);
            let (r2, w2, h2) = apply(t.inverse(), r1, w1, h1);
            assert_eq!((r2, w2, h2), (r, w, h), "{t}");
            assert_eq!(t.then(t.inverse()), Transform::Identity);
            assert_eq!(t.inverse().then(t), Transform::Identity);
        }
    }

    #[test]
    fn rotation_powers() {
        use Transform::*;
        assert_eq!(Rotate90.then(Rotate90), Rotate180);
        assert_eq!(Rotate90.then(Rotate180), Rotate270);
        assert_eq!(Rotate90.then(Rotate270), Identity);
        assert_eq!(Rotate180.then(Rotate180), Identity);
    }

    #[test]
    fn reflections_are_involutions() {
        use Transform::*;
        for t in [ReflectX, ReflectY, Transpose, AntiTranspose] {
            assert_eq!(t.then(t), Identity, "{t}");
            assert_eq!(t.inverse(), t);
        }
    }

    #[test]
    fn two_axis_reflections_compose_to_rotation() {
        use Transform::*;
        assert_eq!(ReflectX.then(ReflectY), Rotate180);
        assert_eq!(ReflectY.then(ReflectX), Rotate180);
        assert_eq!(Transpose.then(AntiTranspose), Rotate180);
    }

    #[test]
    fn group_is_closed_and_has_unique_elements() {
        use std::collections::HashSet;
        let all: HashSet<_> = Transform::ALL.into_iter().collect();
        assert_eq!(all.len(), 8);
        for a in Transform::ALL {
            for b in Transform::ALL {
                assert!(all.contains(&a.then(b)));
            }
        }
    }

    #[test]
    fn paper_set_is_subset_without_diagonals() {
        assert_eq!(Transform::PAPER_SET.len(), 6);
        assert!(!Transform::PAPER_SET.contains(&Transform::Transpose));
        assert!(!Transform::PAPER_SET.contains(&Transform::AntiTranspose));
    }

    #[test]
    fn default_is_identity() {
        assert_eq!(Transform::default(), Transform::Identity);
    }

    #[test]
    fn display_names_are_unique() {
        use std::collections::HashSet;
        let names: HashSet<_> = Transform::ALL.iter().map(|t| t.to_string()).collect();
        assert_eq!(names.len(), 8);
    }
}
