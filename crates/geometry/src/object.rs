//! Icon object identity: classes, ids, and placed objects.

use crate::{GeometryError, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The symbolic *class* of an icon object (the paper's `V` alphabet — "A",
/// "B", "house", "car", …).
///
/// Spatial-relation models of the 2-D string family match objects by class:
/// two objects of the same class are interchangeable for retrieval purposes.
/// Class names are validated once at construction: they must be non-empty,
/// must not contain whitespace or `_`, and must not be the reserved dummy
/// symbol `E` (ε) used by BE-strings.
///
/// Cloning is cheap (`Arc<str>` internally).
///
/// # Example
///
/// ```
/// use be2d_geometry::ObjectClass;
///
/// let a = ObjectClass::new("A");
/// assert_eq!(a.name(), "A");
/// assert_eq!(a, ObjectClass::new("A"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ObjectClass(Arc<str>);

impl ObjectClass {
    /// Creates a class, panicking on invalid names.
    ///
    /// This is the ergonomic constructor for literals; use
    /// [`ObjectClass::try_new`] for untrusted input.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty, is the reserved dummy symbol `E`, or
    /// contains whitespace or `_`.
    #[must_use]
    pub fn new(name: &str) -> Self {
        ObjectClass::try_new(name).expect("invalid object class name")
    }

    /// Creates a class, validating the name.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::InvalidClassName`] for empty names, the
    /// reserved dummy symbol `E`, or names containing whitespace or `_`.
    pub fn try_new(name: &str) -> Result<Self, GeometryError> {
        let invalid =
            name.is_empty() || name == "E" || name.chars().any(|c| c.is_whitespace() || c == '_');
        if invalid {
            return Err(GeometryError::InvalidClassName {
                name: name.to_owned(),
            });
        }
        Ok(ObjectClass(Arc::from(name)))
    }

    /// The class name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for ObjectClass {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A stable identifier of one object *within one scene*.
///
/// Ids are dense indices assigned by [`Scene`](crate::Scene) in insertion
/// order; they distinguish multiple objects of the same class (the class is
/// what retrieval matches on, the id is what editing operations address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ObjectId(pub usize);

impl ObjectId {
    /// The raw index value.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An icon object placed in a scene: a class plus its MBR.
///
/// # Example
///
/// ```
/// use be2d_geometry::{SceneObject, ObjectClass, ObjectId, Rect};
///
/// # fn main() -> Result<(), be2d_geometry::GeometryError> {
/// let obj = SceneObject::new(ObjectId(0), ObjectClass::new("car"), Rect::new(0, 4, 0, 2)?);
/// assert_eq!(obj.class().name(), "car");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SceneObject {
    id: ObjectId,
    class: ObjectClass,
    mbr: Rect,
}

impl SceneObject {
    /// Creates a placed object.
    #[must_use]
    pub const fn new(id: ObjectId, class: ObjectClass, mbr: Rect) -> Self {
        SceneObject { id, class, mbr }
    }

    /// The object's scene-local id.
    #[must_use]
    pub const fn id(&self) -> ObjectId {
        self.id
    }

    /// The object's class.
    #[must_use]
    pub const fn class(&self) -> &ObjectClass {
        &self.class
    }

    /// The object's MBR.
    #[must_use]
    pub const fn mbr(&self) -> Rect {
        self.mbr
    }

    /// Returns a copy with a different MBR (used by scene editing).
    #[must_use]
    pub fn with_mbr(&self, mbr: Rect) -> SceneObject {
        SceneObject {
            id: self.id,
            class: self.class.clone(),
            mbr,
        }
    }

    /// Returns a copy with a different id (used when re-indexing scenes).
    #[must_use]
    pub fn with_id(&self, id: ObjectId) -> SceneObject {
        SceneObject {
            id,
            class: self.class.clone(),
            mbr: self.mbr,
        }
    }
}

impl fmt::Display for SceneObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{} at {}", self.class, self.id, self.mbr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_validation() {
        assert!(ObjectClass::try_new("A").is_ok());
        assert!(ObjectClass::try_new("house2").is_ok());
        assert!(ObjectClass::try_new("").is_err());
        assert!(
            ObjectClass::try_new("E").is_err(),
            "dummy symbol is reserved"
        );
        assert!(ObjectClass::try_new("a b").is_err());
        assert!(ObjectClass::try_new("a_b").is_err());
        // E as a substring is fine, only the bare symbol is reserved
        assert!(ObjectClass::try_new("Engine").is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid object class name")]
    fn class_new_panics_on_invalid() {
        let _ = ObjectClass::new("E");
    }

    #[test]
    fn class_equality_and_display() {
        let a = ObjectClass::new("A");
        let a2 = a.clone();
        assert_eq!(a, a2);
        assert_eq!(a.to_string(), "A");
        assert_eq!(a.as_ref(), "A");
        assert_ne!(ObjectClass::new("A"), ObjectClass::new("B"));
    }

    #[test]
    fn object_accessors() {
        let r = Rect::new(0, 2, 0, 3).unwrap();
        let o = SceneObject::new(ObjectId(7), ObjectClass::new("X"), r);
        assert_eq!(o.id(), ObjectId(7));
        assert_eq!(o.id().index(), 7);
        assert_eq!(o.class().name(), "X");
        assert_eq!(o.mbr(), r);
        assert_eq!(o.to_string(), "X#7 at [0, 2)x[0, 3)");
    }

    #[test]
    fn with_mbr_and_with_id() {
        let o = SceneObject::new(
            ObjectId(0),
            ObjectClass::new("X"),
            Rect::new(0, 1, 0, 1).unwrap(),
        );
        let r2 = Rect::new(5, 9, 5, 9).unwrap();
        assert_eq!(o.with_mbr(r2).mbr(), r2);
        assert_eq!(o.with_id(ObjectId(3)).id(), ObjectId(3));
    }
}
