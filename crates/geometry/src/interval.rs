//! Half-open 1-D intervals — the projections of MBRs onto an axis.

use crate::{AllenRelation, GeometryError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A non-empty interval `[begin, end)` on one axis.
///
/// An icon object's MBR projects to one `Interval` per axis; the BE-string
/// model (§3 of the paper) represents the object *only* by these begin and
/// end boundaries. Intervals are always non-empty (`begin < end`): a
/// degenerate extent has no distinguishable begin/end boundary pair and is
/// rejected by [`Interval::new`].
///
/// # Example
///
/// ```
/// use be2d_geometry::Interval;
///
/// # fn main() -> Result<(), be2d_geometry::GeometryError> {
/// let i = Interval::new(2, 7)?;
/// assert_eq!(i.length(), 5);
/// assert!(i.contains_point(2) && !i.contains_point(7));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Interval {
    begin: i64,
    end: i64,
}

impl Interval {
    /// Creates the interval `[begin, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyInterval`] when `begin >= end`.
    pub fn new(begin: i64, end: i64) -> Result<Self, GeometryError> {
        if begin >= end {
            return Err(GeometryError::EmptyInterval { begin, end });
        }
        Ok(Interval { begin, end })
    }

    /// The begin boundary coordinate.
    #[must_use]
    pub const fn begin(&self) -> i64 {
        self.begin
    }

    /// The end boundary coordinate.
    #[must_use]
    pub const fn end(&self) -> i64 {
        self.end
    }

    /// Length of the interval (`end - begin`), always positive.
    #[must_use]
    pub const fn length(&self) -> i64 {
        self.end - self.begin
    }

    /// Midpoint, rounded towards the begin boundary.
    ///
    /// Used by the Chang 2-D string baseline, which reduces objects to their
    /// centroid before projecting.
    #[must_use]
    pub const fn midpoint(&self) -> i64 {
        self.begin + (self.end - self.begin) / 2
    }

    /// Whether `x` lies inside `[begin, end)`.
    #[must_use]
    pub const fn contains_point(&self, x: i64) -> bool {
        self.begin <= x && x < self.end
    }

    /// Whether `other` lies entirely inside `self` (boundaries may touch).
    #[must_use]
    pub const fn contains(&self, other: &Interval) -> bool {
        self.begin <= other.begin && other.end <= self.end
    }

    /// Whether the two intervals share at least one point.
    #[must_use]
    pub const fn overlaps(&self, other: &Interval) -> bool {
        self.begin < other.end && other.begin < self.end
    }

    /// Intersection of two intervals, or `None` when they are disjoint.
    #[must_use]
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        let begin = self.begin.max(other.begin);
        let end = self.end.min(other.end);
        Interval::new(begin, end).ok()
    }

    /// Translates the interval by `delta`.
    #[must_use]
    pub fn translated(&self, delta: i64) -> Interval {
        Interval {
            begin: self.begin + delta,
            end: self.end + delta,
        }
    }

    /// Mirrors the interval inside `[0, extent]`: the image-frame reflection
    /// used by the D4 transforms (`x ↦ extent - x` swaps and negates the
    /// boundaries).
    ///
    /// ```
    /// use be2d_geometry::Interval;
    /// # fn main() -> Result<(), be2d_geometry::GeometryError> {
    /// let i = Interval::new(2, 5)?;
    /// assert_eq!(i.mirrored(10), Interval::new(5, 8)?);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn mirrored(&self, extent: i64) -> Interval {
        Interval {
            begin: extent - self.end,
            end: extent - self.begin,
        }
    }

    /// The Allen relation `self R other` between the two intervals.
    ///
    /// This is the full thirteen-relation classification used by the 2-D
    /// string family baselines (G-/C-string rank tables); the BE-string model
    /// itself never needs it, which is precisely the paper's point.
    #[must_use]
    pub fn allen_relation(&self, other: &Interval) -> AllenRelation {
        AllenRelation::classify(self, other)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.begin, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(b: i64, e: i64) -> Interval {
        Interval::new(b, e).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            Interval::new(5, 5),
            Err(GeometryError::EmptyInterval { begin: 5, end: 5 })
        ));
        assert!(Interval::new(6, 5).is_err());
    }

    #[test]
    fn accessors() {
        let i = iv(-3, 4);
        assert_eq!(i.begin(), -3);
        assert_eq!(i.end(), 4);
        assert_eq!(i.length(), 7);
        assert_eq!(i.midpoint(), 0);
    }

    #[test]
    fn containment_point() {
        let i = iv(2, 7);
        assert!(i.contains_point(2));
        assert!(i.contains_point(6));
        assert!(!i.contains_point(7));
        assert!(!i.contains_point(1));
    }

    #[test]
    fn containment_interval() {
        assert!(iv(0, 10).contains(&iv(0, 10)));
        assert!(iv(0, 10).contains(&iv(3, 7)));
        assert!(iv(0, 10).contains(&iv(0, 5)));
        assert!(!iv(0, 10).contains(&iv(-1, 5)));
        assert!(!iv(3, 7).contains(&iv(0, 10)));
    }

    #[test]
    fn overlap_is_symmetric_and_open_at_touch() {
        assert!(iv(0, 5).overlaps(&iv(4, 9)));
        assert!(iv(4, 9).overlaps(&iv(0, 5)));
        // meeting at a boundary shares no point in half-open semantics
        assert!(!iv(0, 5).overlaps(&iv(5, 9)));
    }

    #[test]
    fn intersection() {
        assert_eq!(iv(0, 5).intersection(&iv(3, 9)), Some(iv(3, 5)));
        assert_eq!(iv(0, 5).intersection(&iv(5, 9)), None);
        assert_eq!(iv(0, 5).intersection(&iv(7, 9)), None);
        assert_eq!(iv(0, 10).intersection(&iv(2, 4)), Some(iv(2, 4)));
    }

    #[test]
    fn translate_and_mirror_roundtrip() {
        let i = iv(2, 5);
        assert_eq!(i.translated(3).translated(-3), i);
        assert_eq!(i.mirrored(10).mirrored(10), i);
        assert_eq!(i.mirrored(10), iv(5, 8));
    }

    #[test]
    fn display() {
        assert_eq!(iv(1, 2).to_string(), "[1, 2)");
    }
}
