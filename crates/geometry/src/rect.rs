//! Axis-aligned rectangles — the MBRs of icon objects.

use crate::{GeometryError, Interval, OrthogonalRelation, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle `[x_begin, x_end) × [y_begin, y_end)` — the
/// *minimum bounding rectangle* (MBR) of an icon object.
///
/// The 2D BE-string model (§3 of the paper) represents an object purely by
/// the four boundary coordinates of its MBR, so `Rect` is the complete
/// geometric description of an object as far as the model is concerned.
/// Rectangles are always non-degenerate in both axes.
///
/// # Example
///
/// ```
/// use be2d_geometry::Rect;
///
/// # fn main() -> Result<(), be2d_geometry::GeometryError> {
/// let r = Rect::new(10, 50, 25, 85)?;
/// assert_eq!(r.width(), 40);
/// assert_eq!(r.height(), 60);
/// assert_eq!(r.area(), 2400);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rect {
    x: Interval,
    y: Interval,
}

impl Rect {
    /// Creates a rectangle from its four boundary coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyInterval`] when `x_begin >= x_end` or
    /// `y_begin >= y_end`.
    pub fn new(x_begin: i64, x_end: i64, y_begin: i64, y_end: i64) -> Result<Self, GeometryError> {
        Ok(Rect {
            x: Interval::new(x_begin, x_end)?,
            y: Interval::new(y_begin, y_end)?,
        })
    }

    /// Creates a rectangle from per-axis intervals.
    #[must_use]
    pub const fn from_intervals(x: Interval, y: Interval) -> Self {
        Rect { x, y }
    }

    /// Creates the rectangle spanning two corner points.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyInterval`] when the points agree on
    /// either coordinate.
    pub fn from_corners(a: Point, b: Point) -> Result<Self, GeometryError> {
        Rect::new(a.x.min(b.x), a.x.max(b.x), a.y.min(b.y), a.y.max(b.y))
    }

    /// Projection on the x-axis.
    #[must_use]
    pub const fn x(&self) -> Interval {
        self.x
    }

    /// Projection on the y-axis.
    #[must_use]
    pub const fn y(&self) -> Interval {
        self.y
    }

    /// Begin boundary on the x-axis (the paper's `x_b`).
    #[must_use]
    pub const fn x_begin(&self) -> i64 {
        self.x.begin()
    }

    /// End boundary on the x-axis (the paper's `x_e`).
    #[must_use]
    pub const fn x_end(&self) -> i64 {
        self.x.end()
    }

    /// Begin boundary on the y-axis (the paper's `y_b`).
    #[must_use]
    pub const fn y_begin(&self) -> i64 {
        self.y.begin()
    }

    /// End boundary on the y-axis (the paper's `y_e`).
    #[must_use]
    pub const fn y_end(&self) -> i64 {
        self.y.end()
    }

    /// Width (`x_end - x_begin`), always positive.
    #[must_use]
    pub const fn width(&self) -> i64 {
        self.x.length()
    }

    /// Height (`y_end - y_begin`), always positive.
    #[must_use]
    pub const fn height(&self) -> i64 {
        self.y.length()
    }

    /// Area of the rectangle.
    #[must_use]
    pub const fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// Centroid, rounded towards the begin boundaries.
    #[must_use]
    pub const fn centroid(&self) -> Point {
        Point::new(self.x.midpoint(), self.y.midpoint())
    }

    /// Whether `p` lies inside the rectangle (half-open on both axes).
    #[must_use]
    pub const fn contains_point(&self, p: Point) -> bool {
        self.x.contains_point(p.x) && self.y.contains_point(p.y)
    }

    /// Whether `other` lies entirely inside `self` (boundaries may touch).
    #[must_use]
    pub const fn contains(&self, other: &Rect) -> bool {
        self.x.contains(&other.x) && self.y.contains(&other.y)
    }

    /// Whether the two rectangles share at least one point.
    #[must_use]
    pub const fn overlaps(&self, other: &Rect) -> bool {
        self.x.overlaps(&other.x) && self.y.overlaps(&other.y)
    }

    /// Intersection rectangle, or `None` when disjoint.
    #[must_use]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        Some(Rect {
            x: self.x.intersection(&other.x)?,
            y: self.y.intersection(&other.y)?,
        })
    }

    /// Smallest rectangle containing both operands (their joint MBR).
    #[must_use]
    pub fn union_mbr(&self, other: &Rect) -> Rect {
        Rect {
            x: Interval::new(
                self.x.begin().min(other.x.begin()),
                self.x.end().max(other.x.end()),
            )
            .expect("union of non-empty intervals is non-empty"),
            y: Interval::new(
                self.y.begin().min(other.y.begin()),
                self.y.end().max(other.y.end()),
            )
            .expect("union of non-empty intervals is non-empty"),
        }
    }

    /// Translates the rectangle by `(dx, dy)`.
    #[must_use]
    pub fn translated(&self, dx: i64, dy: i64) -> Rect {
        Rect {
            x: self.x.translated(dx),
            y: self.y.translated(dy),
        }
    }

    /// The orthogonal (per-axis Allen) relation `self R other`.
    #[must_use]
    pub fn orthogonal_relation(&self, other: &Rect) -> OrthogonalRelation {
        OrthogonalRelation::new(
            self.x.allen_relation(&other.x),
            self.y.allen_relation(&other.y),
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AllenRelation;

    fn rect(xb: i64, xe: i64, yb: i64, ye: i64) -> Rect {
        Rect::new(xb, xe, yb, ye).unwrap()
    }

    #[test]
    fn rejects_degenerate() {
        assert!(Rect::new(0, 0, 0, 5).is_err());
        assert!(Rect::new(0, 5, 5, 5).is_err());
        assert!(Rect::new(5, 0, 0, 5).is_err());
    }

    #[test]
    fn accessors() {
        let r = rect(1, 4, 2, 8);
        assert_eq!(
            (r.x_begin(), r.x_end(), r.y_begin(), r.y_end()),
            (1, 4, 2, 8)
        );
        assert_eq!(r.width(), 3);
        assert_eq!(r.height(), 6);
        assert_eq!(r.area(), 18);
        assert_eq!(r.centroid(), Point::new(2, 5));
    }

    #[test]
    fn from_corners_normalises() {
        let r = Rect::from_corners(Point::new(4, 8), Point::new(1, 2)).unwrap();
        assert_eq!(r, rect(1, 4, 2, 8));
        assert!(Rect::from_corners(Point::new(1, 1), Point::new(1, 5)).is_err());
    }

    #[test]
    fn containment_and_overlap() {
        let outer = rect(0, 10, 0, 10);
        let inner = rect(2, 5, 3, 7);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.overlaps(&inner));
        assert!(outer.contains_point(Point::new(0, 0)));
        assert!(!outer.contains_point(Point::new(10, 5)));

        let left = rect(0, 5, 0, 5);
        let right = rect(5, 9, 0, 5);
        assert!(!left.overlaps(&right), "touching rectangles share no point");
        // overlap requires both axes to overlap
        let diag = rect(6, 9, 6, 9);
        assert!(!left.overlaps(&diag));
    }

    #[test]
    fn intersection_and_union() {
        let a = rect(0, 6, 0, 6);
        let b = rect(4, 9, 3, 9);
        assert_eq!(a.intersection(&b), Some(rect(4, 6, 3, 6)));
        assert_eq!(a.union_mbr(&b), rect(0, 9, 0, 9));
        let c = rect(7, 9, 0, 2);
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn translation_roundtrip() {
        let r = rect(1, 3, 2, 4);
        assert_eq!(r.translated(5, -1).translated(-5, 1), r);
    }

    #[test]
    fn orthogonal_relation_matches_axes() {
        let a = rect(0, 5, 10, 20);
        let b = rect(5, 9, 12, 18);
        let rel = a.orthogonal_relation(&b);
        assert_eq!(rel.x, AllenRelation::Meets);
        assert_eq!(rel.y, AllenRelation::Contains);
    }

    #[test]
    fn display() {
        assert_eq!(rect(1, 2, 3, 4).to_string(), "[1, 2)x[3, 4)");
    }
}
