//! Allen's thirteen interval relations and the category lattice used by the
//! 2-D string family similarity types.
//!
//! The BE-string model of the paper deliberately avoids explicit spatial
//! operators; this module exists to implement the *baselines* (2-D string,
//! 2D G-/C-/B-string with type-0/1/2 similarity) against which the paper
//! positions itself, and to give workloads a ground-truth notion of "the
//! spatial relation between two objects changed".

use crate::Interval;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Allen's thirteen qualitative relations between two non-empty intervals.
///
/// Named from the perspective `A R B`. The seven "positive" relations plus
/// six inverses cover every possible configuration of two intervals exactly
/// once, which the exhaustiveness property test in this module checks.
///
/// # Example
///
/// ```
/// use be2d_geometry::{AllenRelation, Interval};
///
/// # fn main() -> Result<(), be2d_geometry::GeometryError> {
/// let a = Interval::new(0, 5)?;
/// let b = Interval::new(5, 9)?;
/// assert_eq!(AllenRelation::classify(&a, &b), AllenRelation::Meets);
/// assert_eq!(AllenRelation::classify(&b, &a), AllenRelation::MetBy);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AllenRelation {
    /// `A` ends strictly before `B` begins (`A < B` in 2-D string notation).
    Before,
    /// `A` ends exactly where `B` begins (`A | B`, the "edge to edge" operator).
    Meets,
    /// `A` begins before `B`, they overlap, `A` ends inside `B` (`A / B`).
    Overlaps,
    /// `A` begins with `B` but ends inside it (`A [ B` with shorter `A`).
    Starts,
    /// `A` lies strictly inside `B` (`A % B`).
    During,
    /// `A` ends with `B` but begins inside it (`A ] B` with shorter `A`).
    Finishes,
    /// `A` and `B` have identical boundaries (`A = B`).
    Equal,
    /// Inverse of [`Starts`](AllenRelation::Starts): same begin, `A` longer.
    StartedBy,
    /// Inverse of [`During`](AllenRelation::During): `B` strictly inside `A`.
    Contains,
    /// Inverse of [`Finishes`](AllenRelation::Finishes): same end, `A` longer.
    FinishedBy,
    /// Inverse of [`Overlaps`](AllenRelation::Overlaps).
    OverlappedBy,
    /// Inverse of [`Meets`](AllenRelation::Meets).
    MetBy,
    /// Inverse of [`Before`](AllenRelation::Before).
    After,
}

impl AllenRelation {
    /// All thirteen relations, in a fixed canonical order.
    pub const ALL: [AllenRelation; 13] = [
        AllenRelation::Before,
        AllenRelation::Meets,
        AllenRelation::Overlaps,
        AllenRelation::Starts,
        AllenRelation::During,
        AllenRelation::Finishes,
        AllenRelation::Equal,
        AllenRelation::StartedBy,
        AllenRelation::Contains,
        AllenRelation::FinishedBy,
        AllenRelation::OverlappedBy,
        AllenRelation::MetBy,
        AllenRelation::After,
    ];

    /// Classifies the relation `a R b`.
    #[must_use]
    pub fn classify(a: &Interval, b: &Interval) -> AllenRelation {
        use std::cmp::Ordering::*;
        match (a.begin().cmp(&b.begin()), a.end().cmp(&b.end())) {
            (Equal, Equal) => AllenRelation::Equal,
            (Equal, Less) => AllenRelation::Starts,
            (Equal, Greater) => AllenRelation::StartedBy,
            (Less, Equal) => AllenRelation::FinishedBy,
            (Greater, Equal) => AllenRelation::Finishes,
            (Less, Less) => {
                if a.end() < b.begin() {
                    AllenRelation::Before
                } else if a.end() == b.begin() {
                    AllenRelation::Meets
                } else {
                    AllenRelation::Overlaps
                }
            }
            (Greater, Greater) => {
                if b.end() < a.begin() {
                    AllenRelation::After
                } else if b.end() == a.begin() {
                    AllenRelation::MetBy
                } else {
                    AllenRelation::OverlappedBy
                }
            }
            (Less, Greater) => AllenRelation::Contains,
            (Greater, Less) => AllenRelation::During,
        }
    }

    /// The inverse relation: `a R b` iff `b R⁻¹ a`.
    ///
    /// ```
    /// use be2d_geometry::AllenRelation;
    /// assert_eq!(AllenRelation::Before.inverse(), AllenRelation::After);
    /// assert_eq!(AllenRelation::Equal.inverse(), AllenRelation::Equal);
    /// ```
    #[must_use]
    pub const fn inverse(self) -> AllenRelation {
        match self {
            AllenRelation::Before => AllenRelation::After,
            AllenRelation::Meets => AllenRelation::MetBy,
            AllenRelation::Overlaps => AllenRelation::OverlappedBy,
            AllenRelation::Starts => AllenRelation::StartedBy,
            AllenRelation::During => AllenRelation::Contains,
            AllenRelation::Finishes => AllenRelation::FinishedBy,
            AllenRelation::Equal => AllenRelation::Equal,
            AllenRelation::StartedBy => AllenRelation::Starts,
            AllenRelation::Contains => AllenRelation::During,
            AllenRelation::FinishedBy => AllenRelation::Finishes,
            AllenRelation::OverlappedBy => AllenRelation::Overlaps,
            AllenRelation::MetBy => AllenRelation::Meets,
            AllenRelation::After => AllenRelation::Before,
        }
    }

    /// The reversal of the relation under coordinate mirroring
    /// (`x ↦ extent − x`). Mirroring swaps begins with ends, so e.g.
    /// `Before` stays… `After`? No — mirroring reverses the axis direction,
    /// mapping `A before B` to `A after B`, `A starts B` to `A finishes B`.
    ///
    /// ```
    /// use be2d_geometry::AllenRelation;
    /// assert_eq!(AllenRelation::Starts.mirrored(), AllenRelation::Finishes);
    /// assert_eq!(AllenRelation::Meets.mirrored(), AllenRelation::MetBy);
    /// ```
    #[must_use]
    pub const fn mirrored(self) -> AllenRelation {
        match self {
            AllenRelation::Before => AllenRelation::After,
            AllenRelation::After => AllenRelation::Before,
            AllenRelation::Meets => AllenRelation::MetBy,
            AllenRelation::MetBy => AllenRelation::Meets,
            AllenRelation::Overlaps => AllenRelation::OverlappedBy,
            AllenRelation::OverlappedBy => AllenRelation::Overlaps,
            AllenRelation::Starts => AllenRelation::Finishes,
            AllenRelation::Finishes => AllenRelation::Starts,
            AllenRelation::StartedBy => AllenRelation::FinishedBy,
            AllenRelation::FinishedBy => AllenRelation::StartedBy,
            AllenRelation::During => AllenRelation::During,
            AllenRelation::Contains => AllenRelation::Contains,
            AllenRelation::Equal => AllenRelation::Equal,
        }
    }

    /// The coarse category of the relation — the grouping the type-0/1
    /// similarity constraints of the 2-D string family are defined on.
    #[must_use]
    pub const fn category(self) -> RelationCategory {
        match self {
            AllenRelation::Before | AllenRelation::Meets => RelationCategory::DisjointBefore,
            AllenRelation::After | AllenRelation::MetBy => RelationCategory::DisjointAfter,
            AllenRelation::Overlaps => RelationCategory::PartialOverlapLeft,
            AllenRelation::OverlappedBy => RelationCategory::PartialOverlapRight,
            AllenRelation::Starts | AllenRelation::During | AllenRelation::Finishes => {
                RelationCategory::Inside
            }
            AllenRelation::StartedBy | AllenRelation::Contains | AllenRelation::FinishedBy => {
                RelationCategory::Containing
            }
            AllenRelation::Equal => RelationCategory::Same,
        }
    }

    /// The classic 2-D string family operator glyph for this relation, as
    /// used in the G-/C-string literature (`<`, `|`, `/`, `[`, `%`, `]`, `=`
    /// and their `*`-marked inverses).
    #[must_use]
    pub const fn operator_glyph(self) -> &'static str {
        match self {
            AllenRelation::Before => "<",
            AllenRelation::Meets => "|",
            AllenRelation::Overlaps => "/",
            AllenRelation::Starts => "[",
            AllenRelation::During => "%",
            AllenRelation::Finishes => "]",
            AllenRelation::Equal => "=",
            AllenRelation::StartedBy => "[*",
            AllenRelation::Contains => "%*",
            AllenRelation::FinishedBy => "]*",
            AllenRelation::OverlappedBy => "/*",
            AllenRelation::MetBy => "|*",
            AllenRelation::After => "<*",
        }
    }

    /// Whether the two interval projections share at least one point.
    #[must_use]
    pub const fn is_overlapping(self) -> bool {
        !matches!(self, AllenRelation::Before | AllenRelation::After)
            && !matches!(self, AllenRelation::Meets | AllenRelation::MetBy)
    }
}

impl fmt::Display for AllenRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AllenRelation::Before => "before",
            AllenRelation::Meets => "meets",
            AllenRelation::Overlaps => "overlaps",
            AllenRelation::Starts => "starts",
            AllenRelation::During => "during",
            AllenRelation::Finishes => "finishes",
            AllenRelation::Equal => "equal",
            AllenRelation::StartedBy => "started-by",
            AllenRelation::Contains => "contains",
            AllenRelation::FinishedBy => "finished-by",
            AllenRelation::OverlappedBy => "overlapped-by",
            AllenRelation::MetBy => "met-by",
            AllenRelation::After => "after",
        };
        f.write_str(name)
    }
}

/// Coarse categories of interval relations.
///
/// The type-1 similarity constraint of the 2-D string family requires the
/// *category* pair of two objects to agree between query and database image;
/// type-2 requires the exact [`AllenRelation`] pair. See
/// `be2d-strings2d::typed` for the full constraint definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RelationCategory {
    /// Strictly or edge-adjacently before.
    DisjointBefore,
    /// Strictly or edge-adjacently after.
    DisjointAfter,
    /// Proper partial overlap with `A` entering from the left.
    PartialOverlapLeft,
    /// Proper partial overlap with `A` entering from the right.
    PartialOverlapRight,
    /// `A` inside `B` (sharing at most one boundary).
    Inside,
    /// `A` containing `B` (sharing at most one boundary).
    Containing,
    /// Identical projections.
    Same,
}

impl RelationCategory {
    /// All seven categories in canonical order.
    pub const ALL: [RelationCategory; 7] = [
        RelationCategory::DisjointBefore,
        RelationCategory::DisjointAfter,
        RelationCategory::PartialOverlapLeft,
        RelationCategory::PartialOverlapRight,
        RelationCategory::Inside,
        RelationCategory::Containing,
        RelationCategory::Same,
    ];

    /// Whether this category keeps the projections disjoint.
    #[must_use]
    pub const fn is_disjoint(self) -> bool {
        matches!(
            self,
            RelationCategory::DisjointBefore | RelationCategory::DisjointAfter
        )
    }
}

impl fmt::Display for RelationCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RelationCategory::DisjointBefore => "disjoint-before",
            RelationCategory::DisjointAfter => "disjoint-after",
            RelationCategory::PartialOverlapLeft => "overlap-left",
            RelationCategory::PartialOverlapRight => "overlap-right",
            RelationCategory::Inside => "inside",
            RelationCategory::Containing => "containing",
            RelationCategory::Same => "same",
        };
        f.write_str(name)
    }
}

/// The pair of Allen relations between two objects along the x- and y-axes.
///
/// This "orthogonal relation" is the unit of comparison in the type-0/1/2
/// similarity framework of the related work (§2 of the paper): two images
/// agree on an object pair when their orthogonal relations satisfy the
/// type-i constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OrthogonalRelation {
    /// Relation of the x-axis projections.
    pub x: AllenRelation,
    /// Relation of the y-axis projections.
    pub y: AllenRelation,
}

impl OrthogonalRelation {
    /// Creates an orthogonal relation from per-axis relations.
    #[must_use]
    pub const fn new(x: AllenRelation, y: AllenRelation) -> Self {
        OrthogonalRelation { x, y }
    }

    /// The inverse pair (`b R a` from `a R b`).
    #[must_use]
    pub const fn inverse(self) -> Self {
        OrthogonalRelation {
            x: self.x.inverse(),
            y: self.y.inverse(),
        }
    }

    /// Category pair, the unit of type-1 comparison.
    #[must_use]
    pub const fn categories(self) -> (RelationCategory, RelationCategory) {
        (self.x.category(), self.y.category())
    }
}

impl fmt::Display for OrthogonalRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(x: {}, y: {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interval;

    fn iv(b: i64, e: i64) -> Interval {
        Interval::new(b, e).unwrap()
    }

    #[test]
    fn classify_all_thirteen() {
        let b = iv(10, 20);
        let cases = [
            (iv(0, 5), AllenRelation::Before),
            (iv(0, 10), AllenRelation::Meets),
            (iv(5, 15), AllenRelation::Overlaps),
            (iv(10, 15), AllenRelation::Starts),
            (iv(12, 18), AllenRelation::During),
            (iv(15, 20), AllenRelation::Finishes),
            (iv(10, 20), AllenRelation::Equal),
            (iv(10, 25), AllenRelation::StartedBy),
            (iv(5, 25), AllenRelation::Contains),
            (iv(5, 20), AllenRelation::FinishedBy),
            (iv(15, 25), AllenRelation::OverlappedBy),
            (iv(20, 25), AllenRelation::MetBy),
            (iv(25, 30), AllenRelation::After),
        ];
        for (a, expected) in cases {
            assert_eq!(AllenRelation::classify(&a, &b), expected, "a={a} b={b}");
        }
    }

    #[test]
    fn inverse_is_involution_and_consistent_with_classify() {
        let b = iv(10, 20);
        for a_begin in 0..30 {
            for a_end in (a_begin + 1)..=30 {
                let a = iv(a_begin, a_end);
                let r = AllenRelation::classify(&a, &b);
                assert_eq!(r.inverse(), AllenRelation::classify(&b, &a));
                assert_eq!(r.inverse().inverse(), r);
            }
        }
    }

    #[test]
    fn mirror_is_involution_and_consistent_with_geometry() {
        let extent = 40;
        let b = iv(10, 20);
        for a_begin in 0..30 {
            for a_end in (a_begin + 1)..=30 {
                let a = iv(a_begin, a_end);
                let r = AllenRelation::classify(&a, &b);
                let rm = AllenRelation::classify(&a.mirrored(extent), &b.mirrored(extent));
                assert_eq!(r.mirrored(), rm, "a={a} b={b}");
                assert_eq!(r.mirrored().mirrored(), r);
            }
        }
    }

    #[test]
    fn all_covers_every_configuration_exactly_once() {
        use std::collections::HashSet;
        let b = iv(10, 20);
        let mut seen = HashSet::new();
        for a_begin in 0..=30 {
            for a_end in (a_begin + 1)..=31 {
                seen.insert(AllenRelation::classify(&iv(a_begin, a_end), &b));
            }
        }
        assert_eq!(seen.len(), 13);
        for r in AllenRelation::ALL {
            assert!(seen.contains(&r));
        }
    }

    #[test]
    fn categories_group_sensibly() {
        assert_eq!(
            AllenRelation::Before.category(),
            RelationCategory::DisjointBefore
        );
        assert_eq!(
            AllenRelation::Meets.category(),
            RelationCategory::DisjointBefore
        );
        assert_eq!(AllenRelation::During.category(), RelationCategory::Inside);
        assert_eq!(
            AllenRelation::Contains.category(),
            RelationCategory::Containing
        );
        assert_eq!(AllenRelation::Equal.category(), RelationCategory::Same);
        assert!(AllenRelation::Before.category().is_disjoint());
        assert!(!AllenRelation::Overlaps.category().is_disjoint());
    }

    #[test]
    fn glyphs_are_distinct() {
        use std::collections::HashSet;
        let glyphs: HashSet<_> = AllenRelation::ALL
            .iter()
            .map(|r| r.operator_glyph())
            .collect();
        assert_eq!(glyphs.len(), 13);
    }

    #[test]
    fn is_overlapping_matches_interval_overlap() {
        let b = iv(10, 20);
        for a_begin in 0..30 {
            for a_end in (a_begin + 1)..=30 {
                let a = iv(a_begin, a_end);
                assert_eq!(
                    AllenRelation::classify(&a, &b).is_overlapping(),
                    a.overlaps(&b),
                    "a={a}"
                );
            }
        }
    }

    #[test]
    fn orthogonal_relation_inverse() {
        let r = OrthogonalRelation::new(AllenRelation::Before, AllenRelation::During);
        let inv = r.inverse();
        assert_eq!(inv.x, AllenRelation::After);
        assert_eq!(inv.y, AllenRelation::Contains);
        assert_eq!(inv.inverse(), r);
    }

    #[test]
    fn display_names() {
        assert_eq!(AllenRelation::OverlappedBy.to_string(), "overlapped-by");
        assert_eq!(RelationCategory::Same.to_string(), "same");
        let o = OrthogonalRelation::new(AllenRelation::Equal, AllenRelation::Meets);
        assert_eq!(o.to_string(), "(x: equal, y: meets)");
    }
}
