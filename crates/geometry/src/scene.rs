//! Scenes: validated sets of icon objects inside an image frame.

use crate::{GeometryError, ObjectClass, ObjectId, Rect, SceneObject, Transform};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A symbolic image: an image frame of known size plus the icon objects
/// (class + MBR) recognised in it.
///
/// This is exactly the input the paper's Algorithm 1 assumes: *"we have
/// abstracted all objects and their MBR coordinates from that image"*
/// (§3.2). The frame size corresponds to the paper's `X_max`/`Y_max`,
/// needed to decide whether leading/trailing dummy objects are emitted.
///
/// Objects keep dense [`ObjectId`]s in insertion order. Removing an object
/// re-indexes subsequent ids (scene edits are rare and scenes are small, so
/// clarity beats constant-time removal here).
///
/// # Example
///
/// ```
/// use be2d_geometry::{Scene, Rect, ObjectClass};
///
/// # fn main() -> Result<(), be2d_geometry::GeometryError> {
/// let mut scene = Scene::new(100, 100)?;
/// let a = scene.add(ObjectClass::new("A"), Rect::new(10, 50, 25, 85)?)?;
/// assert_eq!(scene.object(a).unwrap().class().name(), "A");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scene {
    width: i64,
    height: i64,
    objects: Vec<SceneObject>,
}

impl Scene {
    /// Creates an empty scene with the given frame size.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyFrame`] when either dimension is not
    /// positive.
    pub fn new(width: i64, height: i64) -> Result<Self, GeometryError> {
        if width <= 0 || height <= 0 {
            return Err(GeometryError::EmptyFrame { width, height });
        }
        Ok(Scene {
            width,
            height,
            objects: Vec::new(),
        })
    }

    /// Frame width (the paper's `X_max`).
    #[must_use]
    pub const fn width(&self) -> i64 {
        self.width
    }

    /// Frame height (the paper's `Y_max`).
    #[must_use]
    pub const fn height(&self) -> i64 {
        self.height
    }

    /// Number of objects in the scene.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the scene has no objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Adds an object, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::OutOfFrame`] when the MBR does not fit the
    /// frame.
    pub fn add(&mut self, class: ObjectClass, mbr: Rect) -> Result<ObjectId, GeometryError> {
        self.check_fits(&mbr)?;
        let id = ObjectId(self.objects.len());
        self.objects.push(SceneObject::new(id, class, mbr));
        Ok(id)
    }

    /// Removes an object by id, re-indexing the ids of later objects.
    ///
    /// Returns the removed object.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::UnknownObject`] for ids not in the scene.
    pub fn remove(&mut self, id: ObjectId) -> Result<SceneObject, GeometryError> {
        if id.index() >= self.objects.len() {
            return Err(GeometryError::UnknownObject { id: id.index() });
        }
        let removed = self.objects.remove(id.index());
        for (i, obj) in self.objects.iter_mut().enumerate().skip(id.index()) {
            *obj = obj.with_id(ObjectId(i));
        }
        Ok(removed)
    }

    /// Looks up an object by id.
    #[must_use]
    pub fn object(&self, id: ObjectId) -> Option<&SceneObject> {
        self.objects.get(id.index())
    }

    /// Iterates over the objects in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, SceneObject> {
        self.objects.iter()
    }

    /// All objects as a slice, in id order.
    #[must_use]
    pub fn objects(&self) -> &[SceneObject] {
        &self.objects
    }

    /// The set of distinct classes present, in sorted order.
    #[must_use]
    pub fn classes(&self) -> Vec<ObjectClass> {
        let set: BTreeSet<_> = self.objects.iter().map(|o| o.class().clone()).collect();
        set.into_iter().collect()
    }

    /// Number of objects of the given class.
    #[must_use]
    pub fn count_class(&self, class: &ObjectClass) -> usize {
        self.objects.iter().filter(|o| o.class() == class).count()
    }

    /// Applies a D4 transform, producing the transformed scene.
    ///
    /// Rotations by 90°/270° swap the frame dimensions. This is the
    /// geometric side of the paper's §4 rotation/reflection retrieval; the
    /// symbolic side (string reversal) lives in `be2d-core` and is
    /// property-tested to commute with this method.
    #[must_use]
    pub fn transformed(&self, t: Transform) -> Scene {
        let (w, h) = (self.width, self.height);
        let (nw, nh) = if t.swaps_axes() { (h, w) } else { (w, h) };
        let objects = self
            .objects
            .iter()
            .map(|o| o.with_mbr(t.apply_rect(o.mbr(), w, h)))
            .collect();
        Scene {
            width: nw,
            height: nh,
            objects,
        }
    }

    /// Translates every object by `(dx, dy)` if the result still fits.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::OutOfFrame`] (without modifying the scene)
    /// if any translated MBR would leave the frame.
    pub fn translate_all(&mut self, dx: i64, dy: i64) -> Result<(), GeometryError> {
        let moved: Vec<SceneObject> = self
            .objects
            .iter()
            .map(|o| o.with_mbr(o.mbr().translated(dx, dy)))
            .collect();
        for o in &moved {
            self.check_fits(&o.mbr())?;
        }
        self.objects = moved;
        Ok(())
    }

    /// Replaces the MBR of an object.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::UnknownObject`] for unknown ids and
    /// [`GeometryError::OutOfFrame`] when the new MBR does not fit.
    pub fn set_mbr(&mut self, id: ObjectId, mbr: Rect) -> Result<(), GeometryError> {
        self.check_fits(&mbr)?;
        match self.objects.get_mut(id.index()) {
            Some(obj) => {
                *obj = obj.with_mbr(mbr);
                Ok(())
            }
            None => Err(GeometryError::UnknownObject { id: id.index() }),
        }
    }

    fn check_fits(&self, mbr: &Rect) -> Result<(), GeometryError> {
        let fits = mbr.x_begin() >= 0
            && mbr.y_begin() >= 0
            && mbr.x_end() <= self.width
            && mbr.y_end() <= self.height;
        if fits {
            Ok(())
        } else {
            Err(GeometryError::OutOfFrame {
                rect: mbr.to_string(),
                width: self.width,
                height: self.height,
            })
        }
    }
}

impl fmt::Display for Scene {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scene {}x{} ({} objects)",
            self.width,
            self.height,
            self.objects.len()
        )?;
        for o in &self.objects {
            writeln!(f, "  {o}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Scene {
    type Item = &'a SceneObject;
    type IntoIter = std::slice::Iter<'a, SceneObject>;

    fn into_iter(self) -> Self::IntoIter {
        self.objects.iter()
    }
}

/// Fluent builder for scenes, convenient in tests and examples.
///
/// # Example
///
/// ```
/// use be2d_geometry::SceneBuilder;
///
/// # fn main() -> Result<(), be2d_geometry::GeometryError> {
/// let scene = SceneBuilder::new(100, 100)
///     .object("A", (10, 50, 25, 85))
///     .object("B", (30, 90, 5, 45))
///     .build()?;
/// assert_eq!(scene.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SceneBuilder {
    width: i64,
    height: i64,
    objects: Vec<(String, (i64, i64, i64, i64))>,
}

impl SceneBuilder {
    /// Starts a builder for a `width × height` frame.
    #[must_use]
    pub fn new(width: i64, height: i64) -> Self {
        SceneBuilder {
            width,
            height,
            objects: Vec::new(),
        }
    }

    /// Queues an object with class `name` and MBR
    /// `(x_begin, x_end, y_begin, y_end)`.
    #[must_use]
    pub fn object(mut self, name: &str, mbr: (i64, i64, i64, i64)) -> Self {
        self.objects.push((name.to_owned(), mbr));
        self
    }

    /// Validates and builds the scene.
    ///
    /// # Errors
    ///
    /// Propagates any validation error from frame, class-name, rectangle or
    /// fit checks.
    pub fn build(self) -> Result<Scene, GeometryError> {
        let mut scene = Scene::new(self.width, self.height)?;
        for (name, (xb, xe, yb, ye)) in self.objects {
            let class = ObjectClass::try_new(&name)?;
            scene.add(class, Rect::new(xb, xe, yb, ye)?)?;
        }
        Ok(scene)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_scene() -> Scene {
        SceneBuilder::new(100, 100)
            .object("A", (10, 50, 25, 85))
            .object("B", (30, 90, 5, 45))
            .object("C", (50, 70, 45, 65))
            .build()
            .unwrap()
    }

    #[test]
    fn frame_validation() {
        assert!(Scene::new(0, 10).is_err());
        assert!(Scene::new(10, -1).is_err());
        assert!(Scene::new(1, 1).is_ok());
    }

    #[test]
    fn add_and_lookup() {
        let mut s = Scene::new(10, 10).unwrap();
        assert!(s.is_empty());
        let id = s
            .add(ObjectClass::new("A"), Rect::new(1, 3, 1, 3).unwrap())
            .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.object(id).unwrap().class().name(), "A");
        assert!(s.object(ObjectId(5)).is_none());
    }

    #[test]
    fn rejects_out_of_frame() {
        let mut s = Scene::new(10, 10).unwrap();
        let err = s.add(ObjectClass::new("A"), Rect::new(5, 12, 0, 5).unwrap());
        assert!(matches!(err, Err(GeometryError::OutOfFrame { .. })));
        let err = s.add(ObjectClass::new("A"), Rect::new(-1, 3, 0, 5).unwrap());
        assert!(matches!(err, Err(GeometryError::OutOfFrame { .. })));
        // boundary-touching fits
        assert!(s
            .add(ObjectClass::new("A"), Rect::new(0, 10, 0, 10).unwrap())
            .is_ok());
    }

    #[test]
    fn remove_reindexes() {
        let mut s = demo_scene();
        let removed = s.remove(ObjectId(1)).unwrap();
        assert_eq!(removed.class().name(), "B");
        assert_eq!(s.len(), 2);
        assert_eq!(s.object(ObjectId(0)).unwrap().class().name(), "A");
        assert_eq!(s.object(ObjectId(1)).unwrap().class().name(), "C");
        assert_eq!(s.object(ObjectId(1)).unwrap().id(), ObjectId(1));
        assert!(s.remove(ObjectId(9)).is_err());
    }

    #[test]
    fn classes_sorted_and_counted() {
        let mut s = demo_scene();
        s.add(ObjectClass::new("A"), Rect::new(0, 5, 0, 5).unwrap())
            .unwrap();
        let names: Vec<_> = s.classes().iter().map(|c| c.name().to_owned()).collect();
        assert_eq!(names, ["A", "B", "C"]);
        assert_eq!(s.count_class(&ObjectClass::new("A")), 2);
        assert_eq!(s.count_class(&ObjectClass::new("Z")), 0);
    }

    #[test]
    fn translate_all_checks_before_mutating() {
        let mut s = demo_scene();
        let before = s.clone();
        assert!(s.translate_all(50, 0).is_err(), "B would leave the frame");
        assert_eq!(s, before, "failed translation must not mutate");
        assert!(s.translate_all(5, 5).is_ok());
        assert_eq!(s.object(ObjectId(0)).unwrap().mbr().x_begin(), 15);
    }

    #[test]
    fn set_mbr() {
        let mut s = demo_scene();
        let r = Rect::new(0, 5, 0, 5).unwrap();
        s.set_mbr(ObjectId(2), r).unwrap();
        assert_eq!(s.object(ObjectId(2)).unwrap().mbr(), r);
        assert!(s.set_mbr(ObjectId(9), r).is_err());
        assert!(s
            .set_mbr(ObjectId(0), Rect::new(0, 101, 0, 5).unwrap())
            .is_err());
    }

    #[test]
    fn iteration() {
        let s = demo_scene();
        let by_iter: Vec<_> = s.iter().map(|o| o.class().name().to_owned()).collect();
        let by_into: Vec<_> = (&s)
            .into_iter()
            .map(|o| o.class().name().to_owned())
            .collect();
        assert_eq!(by_iter, ["A", "B", "C"]);
        assert_eq!(by_iter, by_into);
    }

    #[test]
    fn display_lists_objects() {
        let text = demo_scene().to_string();
        assert!(text.contains("scene 100x100 (3 objects)"));
        assert!(text.contains("A#0"));
        assert!(text.contains("C#2"));
    }

    #[test]
    fn builder_propagates_errors() {
        assert!(SceneBuilder::new(10, 10)
            .object("E", (0, 1, 0, 1))
            .build()
            .is_err());
        assert!(SceneBuilder::new(10, 10)
            .object("A", (0, 0, 0, 1))
            .build()
            .is_err());
        assert!(SceneBuilder::new(10, 10)
            .object("A", (0, 11, 0, 1))
            .build()
            .is_err());
    }
}
