//! Error type for geometric construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating geometric values.
///
/// Every fallible constructor in this crate returns `Result<_, GeometryError>`
/// so that invalid geometry (degenerate rectangles, objects outside the image
/// frame, …) is rejected at the boundary instead of corrupting the symbolic
/// representations downstream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeometryError {
    /// An interval was constructed with `begin >= end`.
    ///
    /// The BE-string model represents an object by its begin and end
    /// boundaries; a zero- or negative-width extent has no begin/end order
    /// and is rejected.
    EmptyInterval {
        /// The offending begin coordinate.
        begin: i64,
        /// The offending end coordinate.
        end: i64,
    },
    /// A coordinate was negative. Scenes live in the first quadrant with the
    /// frame origin at `(0, 0)`.
    NegativeCoordinate {
        /// The offending coordinate value.
        value: i64,
    },
    /// An image frame was constructed with a non-positive dimension.
    EmptyFrame {
        /// Frame width.
        width: i64,
        /// Frame height.
        height: i64,
    },
    /// An object's MBR does not fit inside the scene's image frame.
    OutOfFrame {
        /// The offending rectangle, formatted for display.
        rect: String,
        /// Frame width.
        width: i64,
        /// Frame height.
        height: i64,
    },
    /// An object class name was empty or contained reserved characters.
    ///
    /// The single reserved symbol is `E` (the dummy object ε of the paper)
    /// plus whitespace and the `_b`/`_e` boundary-suffix separator used by
    /// the textual BE-string rendering.
    InvalidClassName {
        /// The rejected name.
        name: String,
    },
    /// An [`ObjectId`](crate::ObjectId) referenced an object that is not in
    /// the scene.
    UnknownObject {
        /// The raw id value.
        id: usize,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::EmptyInterval { begin, end } => {
                write!(f, "empty interval: begin {begin} must be < end {end}")
            }
            GeometryError::NegativeCoordinate { value } => {
                write!(f, "negative coordinate {value} outside the first quadrant")
            }
            GeometryError::EmptyFrame { width, height } => {
                write!(
                    f,
                    "image frame {width}x{height} must have positive dimensions"
                )
            }
            GeometryError::OutOfFrame {
                rect,
                width,
                height,
            } => {
                write!(f, "rectangle {rect} does not fit in {width}x{height} frame")
            }
            GeometryError::InvalidClassName { name } => {
                write!(f, "invalid object class name {name:?}")
            }
            GeometryError::UnknownObject { id } => {
                write!(f, "unknown object id {id}")
            }
        }
    }
}

impl Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_ish() {
        let variants = [
            GeometryError::EmptyInterval { begin: 3, end: 3 },
            GeometryError::NegativeCoordinate { value: -1 },
            GeometryError::EmptyFrame {
                width: 0,
                height: 5,
            },
            GeometryError::OutOfFrame {
                rect: "[0,9]x[0,9]".into(),
                width: 5,
                height: 5,
            },
            GeometryError::InvalidClassName { name: "E".into() },
            GeometryError::UnknownObject { id: 42 },
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeometryError>();
    }
}
