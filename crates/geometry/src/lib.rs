//! Geometric substrate for the 2D BE-string image indexing system.
//!
//! This crate provides the vocabulary every other crate in the workspace
//! builds on:
//!
//! * [`Point`] and [`Interval`] — integer coordinates and 1-D extents;
//! * [`Rect`] — the *minimum bounding rectangle* (MBR) of an icon object;
//! * [`ObjectClass`] and [`SceneObject`] — symbolic icon objects;
//! * [`Scene`] — a validated set of icon objects inside an image frame,
//!   the input to the BE-string conversion algorithm of the paper;
//! * [`AllenRelation`] — Allen's thirteen interval relations, used by the
//!   2-D string family baselines to categorise spatial relationships;
//! * [`Transform`] — the dihedral group `D4` (rotations by 90/180/270° and
//!   the axis reflections) acting on scenes, mirroring §4/§5 of the paper.
//!
//! The paper this workspace reproduces is *"Image Indexing and Similarity
//! Retrieval Based on A New Spatial Relation Model"* (Ying-Hong Wang, 2001).
//! Everything here is deliberately simple, exact (integer) geometry: the
//! spatial-relation model only ever inspects boundary coordinate *order*,
//! never distances, so `i64` coordinates lose nothing.
//!
//! # Example
//!
//! ```
//! use be2d_geometry::{Scene, Rect, ObjectClass};
//!
//! # fn main() -> Result<(), be2d_geometry::GeometryError> {
//! let mut scene = Scene::new(100, 100)?;
//! scene.add(ObjectClass::new("A"), Rect::new(10, 50, 25, 85)?)?;
//! scene.add(ObjectClass::new("B"), Rect::new(30, 90, 5, 45)?)?;
//! assert_eq!(scene.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod interval;
mod object;
mod point;
mod rect;
mod relation;
mod scene;
mod transform;

pub use error::GeometryError;
pub use interval::Interval;
pub use object::{ObjectClass, ObjectId, SceneObject};
pub use point::Point;
pub use rect::Rect;
pub use relation::{AllenRelation, OrthogonalRelation, RelationCategory};
pub use scene::{Scene, SceneBuilder};
pub use transform::Transform;
