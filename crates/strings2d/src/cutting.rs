//! The cutting machinery shared by the 2D G-string and 2D C-string.
//!
//! Both models segment objects along MBR boundaries so that the resulting
//! pieces have only "global" pairwise relations (disjoint / edge-to-edge /
//! same position). They differ in *which* boundaries cut: the G-string
//! cuts every object at **every** boundary point of every object, the
//! C-string cuts only at the end boundary of the *dominating* object of an
//! overlapping group. The paper's §2 cites this segmentation blow-up —
//! O(n²) pieces in the worst case — as a core weakness the BE-string
//! avoids.

use be2d_geometry::{Interval, ObjectClass, ObjectId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One segment of a cut object on one axis.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segment {
    /// The object this segment is a piece of.
    pub id: ObjectId,
    /// The object's class (duplicated here for display convenience).
    pub class: ObjectClass,
    /// The sub-interval covered by this segment.
    pub extent: Interval,
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.class, self.id, self.extent)
    }
}

/// The segments of all objects on one axis, sorted by `(begin, end)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AxisSegments {
    segments: Vec<Segment>,
}

impl AxisSegments {
    pub(crate) fn new(mut segments: Vec<Segment>) -> AxisSegments {
        segments.sort_by_key(|s| (s.extent.begin(), s.extent.end(), s.id));
        AxisSegments { segments }
    }

    /// The segments in sorted order.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments — the storage metric of experiment E2.
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether there are no segments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

impl AxisSegments {
    /// Renders the segments as an operator string in the classic
    /// G-/C-string notation: consecutive segments are joined by `<`
    /// (disjoint), `|` (edge-to-edge), `=` (identical extent), `[`
    /// (same begin), `]` (same end), `%` (containment) or `/` (partial
    /// overlap). After G-string cutting only the *global* operators
    /// (`<`, `|`, `=`, `[`) can appear; the C-string keeps nested
    /// segments, so the local operators show up too.
    #[must_use]
    pub fn render_with_operators(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                let prev = &self.segments[i - 1].extent;
                let cur = &s.extent;
                let op = if prev == cur {
                    "="
                } else if prev.end() < cur.begin() {
                    "<"
                } else if prev.end() == cur.begin() {
                    "|"
                } else if prev.begin() == cur.begin() {
                    "["
                } else if prev.end() == cur.end() {
                    "]"
                } else if prev.contains(cur) || cur.contains(prev) {
                    "%"
                } else {
                    "/"
                };
                out.push_str(&format!(" {op} "));
            }
            out.push_str(&format!("{}{}", s.class, s.id));
        }
        out
    }
}

impl fmt::Display for AxisSegments {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Cuts every interval at every *other* boundary point strictly inside it
/// — the G-string rule. Returns the segments of each input in order.
pub(crate) fn cut_at_all_boundaries(
    intervals: &[(ObjectId, ObjectClass, Interval)],
) -> Vec<Segment> {
    // collect all boundary coordinates
    let mut cuts: Vec<i64> = intervals
        .iter()
        .flat_map(|(_, _, iv)| [iv.begin(), iv.end()])
        .collect();
    cuts.sort_unstable();
    cuts.dedup();

    let mut out = Vec::new();
    for (id, class, iv) in intervals {
        let inner: Vec<i64> = cuts
            .iter()
            .copied()
            .filter(|c| *c > iv.begin() && *c < iv.end())
            .collect();
        let mut begin = iv.begin();
        for c in inner {
            out.push(Segment {
                id: *id,
                class: class.clone(),
                extent: Interval::new(begin, c).expect("cut point strictly inside"),
            });
            begin = c;
        }
        out.push(Segment {
            id: *id,
            class: class.clone(),
            extent: Interval::new(begin, iv.end()).expect("tail segment non-empty"),
        });
    }
    out
}

/// Cuts intervals with the C-string minimal-cut rule: process by
/// `(begin asc, end desc)`; the *dominating* object (earliest begin,
/// longest extent) stays whole, and any object that **partially overlaps**
/// it (extends past its end) is cut at the dominating end boundary, with
/// the right part re-entering the sweep. Nested objects are never cut.
pub(crate) fn cut_minimal(intervals: &[(ObjectId, ObjectClass, Interval)]) -> Vec<Segment> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // min-heap on (begin asc, end desc) via Reverse of (begin, Reverse(end));
    // the payload index resolves id/class and breaks ties deterministically.
    let mut payload: Vec<(ObjectId, ObjectClass)> = intervals
        .iter()
        .map(|(id, class, _)| (*id, class.clone()))
        .collect();
    let mut heap: BinaryHeap<Reverse<(i64, Reverse<i64>, usize)>> = intervals
        .iter()
        .enumerate()
        .map(|(i, (_, _, iv))| Reverse((iv.begin(), Reverse(iv.end()), i)))
        .collect();

    let mut out = Vec::new();
    while let Some(Reverse((begin, Reverse(end), idx))) = heap.pop() {
        // The popped interval dominates everything that begins inside it:
        // it is emitted whole, and overlappers that extend past its end are
        // cut there. Nested intervals stay queued — they become dominating
        // pieces of their own later (the rule applies recursively).
        let (id, class) = payload[idx].clone();
        out.push(Segment {
            id,
            class,
            extent: Interval::new(begin, end).expect("heap intervals non-empty"),
        });

        let mut stash: Vec<Reverse<(i64, Reverse<i64>, usize)>> = Vec::new();
        while let Some(&Reverse((b2, Reverse(e2), i2))) = heap.peek() {
            if b2 >= end {
                break;
            }
            heap.pop();
            if e2 > end {
                // partial overlap: left part [b2, end), right part [end, e2)
                stash.push(Reverse((b2, Reverse(end), i2)));
                payload.push(payload[i2].clone());
                stash.push(Reverse((end, Reverse(e2), payload.len() - 1)));
            } else {
                // nested: untouched, re-queued for its own turn
                stash.push(Reverse((b2, Reverse(e2), i2)));
            }
        }
        heap.extend(stash);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(b: i64, e: i64) -> Interval {
        Interval::new(b, e).unwrap()
    }

    fn inputs(spec: &[(&str, i64, i64)]) -> Vec<(ObjectId, ObjectClass, Interval)> {
        spec.iter()
            .enumerate()
            .map(|(i, (c, b, e))| (ObjectId(i), ObjectClass::new(c), iv(*b, *e)))
            .collect()
    }

    fn extents(segments: &[Segment]) -> Vec<(usize, i64, i64)> {
        let mut v: Vec<_> = segments
            .iter()
            .map(|s| (s.id.index(), s.extent.begin(), s.extent.end()))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn g_cut_disjoint_objects_stay_whole() {
        let segs = cut_at_all_boundaries(&inputs(&[("A", 0, 10), ("B", 20, 30)]));
        assert_eq!(extents(&segs), vec![(0, 0, 10), (1, 20, 30)]);
    }

    #[test]
    fn g_cut_partial_overlap_cuts_both() {
        let segs = cut_at_all_boundaries(&inputs(&[("A", 0, 20), ("B", 10, 30)]));
        assert_eq!(
            extents(&segs),
            vec![(0, 0, 10), (0, 10, 20), (1, 10, 20), (1, 20, 30)]
        );
    }

    #[test]
    fn g_cut_nested_cuts_outer() {
        let segs = cut_at_all_boundaries(&inputs(&[("A", 0, 30), ("B", 10, 20)]));
        assert_eq!(
            extents(&segs),
            vec![(0, 0, 10), (0, 10, 20), (0, 20, 30), (1, 10, 20)]
        );
    }

    #[test]
    fn g_cut_chain_is_quadratic() {
        // n pairwise-overlapping intervals: [0,11], [10,21], [20,31]...
        let n = 8usize;
        let spec: Vec<(ObjectId, ObjectClass, Interval)> = (0..n)
            .map(|i| {
                (
                    ObjectId(i),
                    ObjectClass::new("X"),
                    iv(10 * i as i64, 10 * i as i64 + 11),
                )
            })
            .collect();
        let segs = cut_at_all_boundaries(&spec);
        // interior intervals are cut by two neighbours' boundaries each:
        // 3 segments for interior, 2 for the ends -> 3n - 2
        assert_eq!(segs.len(), 3 * n - 2);
    }

    #[test]
    fn c_cut_disjoint_objects_stay_whole() {
        let segs = cut_minimal(&inputs(&[("A", 0, 10), ("B", 20, 30)]));
        assert_eq!(extents(&segs), vec![(0, 0, 10), (1, 20, 30)]);
    }

    #[test]
    fn c_cut_nested_never_cuts() {
        let segs = cut_minimal(&inputs(&[("A", 0, 30), ("B", 10, 20), ("C", 12, 18)]));
        assert_eq!(extents(&segs), vec![(0, 0, 30), (1, 10, 20), (2, 12, 18)]);
    }

    #[test]
    fn c_cut_partial_overlap_cuts_only_dominated() {
        let segs = cut_minimal(&inputs(&[("A", 0, 20), ("B", 10, 30)]));
        // A (dominating) stays whole; B is cut at 20
        assert_eq!(extents(&segs), vec![(0, 0, 20), (1, 10, 20), (1, 20, 30)]);
    }

    #[test]
    fn c_cut_applies_recursively_inside_nests() {
        // B and C are nested in A, but C extends past B's end: the rule
        // applies recursively, so C is cut at 25.
        let segs = cut_minimal(&inputs(&[("A", 0, 30), ("B", 10, 25), ("C", 20, 28)]));
        assert_eq!(
            extents(&segs),
            vec![(0, 0, 30), (1, 10, 25), (2, 20, 25), (2, 25, 28)]
        );
    }

    #[test]
    fn c_cut_never_more_than_g_cut() {
        let cases: Vec<Vec<(&str, i64, i64)>> = vec![
            vec![("A", 0, 20), ("B", 10, 30), ("C", 15, 40)],
            vec![("A", 0, 50), ("B", 10, 20), ("C", 30, 60)],
            vec![("A", 0, 10), ("B", 0, 10), ("C", 5, 15)],
        ];
        for spec in cases {
            let input = inputs(&spec);
            let g = cut_at_all_boundaries(&input).len();
            let c = cut_minimal(&input).len();
            assert!(
                c <= g,
                "C-string must cut no more than G-string: {c} vs {g}"
            );
        }
    }

    #[test]
    fn cuts_preserve_coverage() {
        // every original interval is exactly tiled by its segments
        let input = inputs(&[("A", 0, 20), ("B", 10, 30), ("C", 5, 40), ("D", 25, 28)]);
        for cut in [cut_at_all_boundaries(&input), cut_minimal(&input)] {
            for (id, _, iv) in &input {
                let mut parts: Vec<_> = cut
                    .iter()
                    .filter(|s| s.id == *id)
                    .map(|s| (s.extent.begin(), s.extent.end()))
                    .collect();
                parts.sort_unstable();
                assert_eq!(parts.first().unwrap().0, iv.begin(), "object {id}");
                assert_eq!(parts.last().unwrap().1, iv.end(), "object {id}");
                for w in parts.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "gap in tiling of {id}");
                }
            }
        }
    }

    #[test]
    fn operator_rendering_uses_global_ops_after_g_cut() {
        // A[0,20] and B[10,30] cut at each other's boundaries
        let segs = AxisSegments::new(cut_at_all_boundaries(&inputs(&[
            ("A", 0, 20),
            ("B", 10, 30),
        ])));
        // sorted: A[0,10] | A[10,20] = B[10,20] | B[20,30]... '=' pairs
        // share the [10,20) extent
        assert_eq!(segs.render_with_operators(), "A#0 | A#0 = B#1 | B#1");
    }

    #[test]
    fn operator_rendering_shows_local_ops_for_c_cut_nesting() {
        // nested B stays whole under the C-cut -> containment operator
        let segs = AxisSegments::new(cut_minimal(&inputs(&[("A", 0, 30), ("B", 10, 20)])));
        assert_eq!(segs.render_with_operators(), "A#0 % B#1");
    }

    #[test]
    fn operator_rendering_disjoint_and_meet() {
        let segs = AxisSegments::new(cut_minimal(&inputs(&[
            ("A", 0, 10),
            ("B", 10, 20),
            ("C", 25, 30),
        ])));
        assert_eq!(segs.render_with_operators(), "A#0 | B#1 < C#2");
    }

    #[test]
    fn axis_segments_sorts_and_displays() {
        let segs = AxisSegments::new(cut_at_all_boundaries(&inputs(&[
            ("B", 10, 30),
            ("A", 0, 20),
        ])));
        assert_eq!(segs.len(), 4);
        assert!(!segs.is_empty());
        let first = &segs.segments()[0];
        assert_eq!(first.extent.begin(), 0);
        assert!(segs.to_string().contains("A#1[0, 10)"));
    }
}
