//! The original 2-D string of Chang, Shi & Yan (1987).
//!
//! The 2-D string reduces each object to a point (we use the MBR centroid,
//! the usual instantiation) and records the symbolic projection along each
//! axis with two operators: `<` ("left of" / "below") and `=` ("at the
//! same position"). It is the ancestor of the whole family; its weakness —
//! no extent information at all — motivated the G-/C-/B-string line the
//! paper reviews in §2.

use be2d_geometry::{ObjectClass, Scene};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 2-D string: per axis, the object classes grouped by equal projection
/// rank; consecutive groups are separated by `<`, members of a group by
/// `=`.
///
/// # Example
///
/// ```
/// use be2d_strings2d::TwoDString;
/// use be2d_geometry::SceneBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scene = SceneBuilder::new(100, 100)
///     .object("A", (0, 20, 0, 20))    // centroid (10, 10)
///     .object("B", (0, 20, 40, 60))   // centroid (10, 50)
///     .object("C", (40, 60, 40, 60))  // centroid (50, 50)
///     .build()?;
/// let s = TwoDString::from_scene(&scene);
/// assert_eq!(s.render_x(), "A = B < C");
/// assert_eq!(s.render_y(), "A < B = C");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoDString {
    x: Vec<Vec<ObjectClass>>,
    y: Vec<Vec<ObjectClass>>,
}

impl TwoDString {
    /// Builds the 2-D string of a scene from object centroids.
    #[must_use]
    pub fn from_scene(scene: &Scene) -> TwoDString {
        TwoDString {
            x: Self::axis(scene, true),
            y: Self::axis(scene, false),
        }
    }

    fn axis(scene: &Scene, x_axis: bool) -> Vec<Vec<ObjectClass>> {
        let mut events: Vec<(i64, &ObjectClass)> = scene
            .iter()
            .map(|o| {
                let c = o.mbr().centroid();
                (if x_axis { c.x } else { c.y }, o.class())
            })
            .collect();
        events.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.name().cmp(b.1.name())));
        let mut groups: Vec<Vec<ObjectClass>> = Vec::new();
        let mut prev: Option<i64> = None;
        for (coord, class) in events {
            if prev == Some(coord) {
                groups.last_mut().expect("group exists").push(class.clone());
            } else {
                groups.push(vec![class.clone()]);
            }
            prev = Some(coord);
        }
        groups
    }

    /// Rank groups along x (innermost `Vec` = equal projections).
    #[must_use]
    pub fn x_groups(&self) -> &[Vec<ObjectClass>] {
        &self.x
    }

    /// Rank groups along y.
    #[must_use]
    pub fn y_groups(&self) -> &[Vec<ObjectClass>] {
        &self.y
    }

    /// The projection rank of each object's class occurrence along x.
    /// Ranks start at 0 and objects in the same group share a rank.
    #[must_use]
    pub fn x_ranks(&self) -> Vec<(ObjectClass, usize)> {
        Self::ranks(&self.x)
    }

    /// The projection rank of each object's class occurrence along y.
    #[must_use]
    pub fn y_ranks(&self) -> Vec<(ObjectClass, usize)> {
        Self::ranks(&self.y)
    }

    fn ranks(groups: &[Vec<ObjectClass>]) -> Vec<(ObjectClass, usize)> {
        groups
            .iter()
            .enumerate()
            .flat_map(|(rank, group)| group.iter().map(move |c| (c.clone(), rank)))
            .collect()
    }

    /// Total symbols (one per object per axis) — the storage metric.
    #[must_use]
    pub fn symbol_count(&self) -> usize {
        self.x.iter().map(Vec::len).sum::<usize>() + self.y.iter().map(Vec::len).sum::<usize>()
    }

    /// Renders the x string, e.g. `A = B < C`.
    #[must_use]
    pub fn render_x(&self) -> String {
        Self::render(&self.x)
    }

    /// Renders the y string.
    #[must_use]
    pub fn render_y(&self) -> String {
        Self::render(&self.y)
    }

    fn render(groups: &[Vec<ObjectClass>]) -> String {
        groups
            .iter()
            .map(|g| {
                g.iter()
                    .map(|c| c.name().to_owned())
                    .collect::<Vec<_>>()
                    .join(" = ")
            })
            .collect::<Vec<_>>()
            .join(" < ")
    }
}

impl fmt::Display for TwoDString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.render_x(), self.render_y())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use be2d_geometry::SceneBuilder;

    #[test]
    fn figure1_style_scene() {
        let scene = SceneBuilder::new(100, 100)
            .object("A", (10, 50, 25, 85)) // centroid (30, 55)
            .object("B", (30, 90, 5, 45)) // centroid (60, 25)
            .object("C", (50, 70, 45, 65)) // centroid (60, 55)
            .build()
            .unwrap();
        let s = TwoDString::from_scene(&scene);
        assert_eq!(s.render_x(), "A < B = C");
        assert_eq!(s.render_y(), "B < A = C");
        assert_eq!(s.symbol_count(), 6);
    }

    #[test]
    fn ranks_share_groups() {
        let scene = SceneBuilder::new(100, 100)
            .object("A", (0, 20, 0, 20))
            .object("B", (0, 20, 40, 60))
            .build()
            .unwrap();
        let s = TwoDString::from_scene(&scene);
        let xr = s.x_ranks();
        assert_eq!(xr.len(), 2);
        assert_eq!(xr[0].1, xr[1].1, "same centroid x -> same rank");
        let yr = s.y_ranks();
        assert_ne!(yr[0].1, yr[1].1);
    }

    #[test]
    fn empty_scene() {
        let s = TwoDString::from_scene(&be2d_geometry::Scene::new(5, 5).unwrap());
        assert_eq!(s.symbol_count(), 0);
        assert_eq!(s.to_string(), "(, )");
        assert!(s.x_groups().is_empty() && s.y_groups().is_empty());
    }

    #[test]
    fn loses_extent_information() {
        // nested vs disjoint objects can produce the same 2-D string —
        // the weakness that motivated the boundary-based successors.
        let nested = SceneBuilder::new(100, 100)
            .object("A", (0, 100, 0, 100)) // centroid (50, 50)
            .object("B", (40, 60, 40, 60)) // centroid (50, 50)
            .build()
            .unwrap();
        let coincident = SceneBuilder::new(100, 100)
            .object("A", (45, 55, 45, 55))
            .object("B", (40, 60, 40, 60))
            .build()
            .unwrap();
        assert_eq!(
            TwoDString::from_scene(&nested),
            TwoDString::from_scene(&coincident)
        );
    }
}
