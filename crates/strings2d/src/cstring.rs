//! The 2D C-string of Lee & Hsu (1990).
//!
//! The C-string keeps the *dominating* object of every overlapping group
//! whole and cuts only the dominated objects at the dominating object's
//! end boundary. This removes most of the G-string's superfluous cuts but
//! is still O(n²) segments in the worst case (§2 of Wang 2001).

use crate::cutting::{cut_minimal, AxisSegments};
use be2d_geometry::Scene;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 2D C-string: the minimally-cut symbolic projection of a scene.
///
/// # Example
///
/// ```
/// use be2d_strings2d::{CString, GString};
/// use be2d_geometry::SceneBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scene = SceneBuilder::new(100, 100)
///     .object("A", (0, 60, 0, 60))
///     .object("B", (10, 20, 10, 20)) // nested: C-string never cuts it
///     .object("C", (50, 90, 50, 90)) // partial overlap: cut once per axis
///     .build()?;
/// let c = CString::from_scene(&scene);
/// let g = GString::from_scene(&scene);
/// assert!(c.segment_count() < g.segment_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CString {
    x: AxisSegments,
    y: AxisSegments,
}

impl CString {
    /// Builds the C-string of a scene with the minimal-cut sweep on both
    /// axes.
    #[must_use]
    pub fn from_scene(scene: &Scene) -> CString {
        let xs: Vec<_> = scene
            .iter()
            .map(|o| (o.id(), o.class().clone(), o.mbr().x()))
            .collect();
        let ys: Vec<_> = scene
            .iter()
            .map(|o| (o.id(), o.class().clone(), o.mbr().y()))
            .collect();
        CString {
            x: AxisSegments::new(cut_minimal(&xs)),
            y: AxisSegments::new(cut_minimal(&ys)),
        }
    }

    /// Segments of the x-axis.
    #[must_use]
    pub fn x(&self) -> &AxisSegments {
        &self.x
    }

    /// Segments of the y-axis.
    #[must_use]
    pub fn y(&self) -> &AxisSegments {
        &self.y
    }

    /// Total number of segments over both axes (experiment E2's storage
    /// metric).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.x.len() + self.y.len()
    }
}

impl fmt::Display for CString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GString;
    use be2d_geometry::{ObjectClass, Rect, SceneBuilder};

    #[test]
    fn disjoint_scene_has_2n_segments() {
        let scene = SceneBuilder::new(100, 100)
            .object("A", (0, 10, 0, 10))
            .object("B", (20, 30, 20, 30))
            .build()
            .unwrap();
        assert_eq!(CString::from_scene(&scene).segment_count(), 4);
    }

    #[test]
    fn nested_objects_never_cut() {
        let scene = SceneBuilder::new(100, 100)
            .object("A", (0, 90, 0, 90))
            .object("B", (10, 50, 10, 50))
            .object("C", (20, 40, 20, 40))
            .build()
            .unwrap();
        let c = CString::from_scene(&scene);
        assert_eq!(c.segment_count(), 6, "pure nesting needs no cuts");
        // while the G-string cuts the outer objects at every inner boundary
        assert!(GString::from_scene(&scene).segment_count() > 6);
    }

    #[test]
    fn partial_overlap_cuts_dominated_only() {
        let scene = SceneBuilder::new(100, 100)
            .object("A", (0, 60, 0, 10))
            .object("B", (40, 90, 0, 10))
            .build()
            .unwrap();
        let c = CString::from_scene(&scene);
        // x: A whole, B cut at 60 -> 3; y: identical projections -> 2
        assert_eq!(c.x().len(), 3);
        assert_eq!(c.y().len(), 2);
    }

    #[test]
    fn c_at_most_g_on_random_like_scenes() {
        let specs: Vec<Vec<(i64, i64, i64, i64)>> = vec![
            vec![
                (0, 30, 0, 30),
                (10, 50, 20, 60),
                (40, 80, 50, 90),
                (5, 95, 5, 95),
            ],
            vec![(0, 10, 0, 10), (0, 10, 0, 10), (5, 15, 5, 15)],
            vec![(0, 100, 0, 100), (10, 20, 10, 20), (30, 40, 30, 40)],
        ];
        for spec in specs {
            let mut scene = be2d_geometry::Scene::new(100, 100).unwrap();
            for (i, (xb, xe, yb, ye)) in spec.iter().enumerate() {
                scene
                    .add(
                        ObjectClass::new(["A", "B", "C", "D"][i % 4]),
                        Rect::new(*xb, *xe, *yb, *ye).unwrap(),
                    )
                    .unwrap();
            }
            let c = CString::from_scene(&scene).segment_count();
            let g = GString::from_scene(&scene).segment_count();
            assert!(c <= g, "C {c} > G {g}");
        }
    }

    #[test]
    fn nested_chain_with_spanners_is_quadratic() {
        // The C-string worst case: a nested chain of "cover" intervals
        // Y_i = [10i, 400-10i] plus spanning intervals X_m that begin
        // inside every Y and end beyond all of them. Each Y_i in turn
        // dominates the leading piece of every X_m and cuts it at its own
        // end boundary, so every X accumulates one cut per Y: O(n²)
        // segments from 2k objects.
        let k = 8i64;
        let mut scene = be2d_geometry::Scene::new(1000, 1000).unwrap();
        for i in 0..k {
            scene
                .add(
                    ObjectClass::new("Y"),
                    Rect::new(10 * i, 400 - 10 * i, 5 * i, 5 * i + 4).unwrap(),
                )
                .unwrap();
        }
        for m in 0..k {
            scene
                .add(
                    ObjectClass::new("X"),
                    Rect::new(100 + 10 * m, 500 + 10 * m, 500 + 5 * m, 500 + 5 * m + 4).unwrap(),
                )
                .unwrap();
        }
        let c = CString::from_scene(&scene);
        let (n, k) = ((2 * k) as usize, k as usize);
        // k whole Ys + k Xs in (k+1) pieces each on the x-axis
        assert_eq!(c.x().len(), k + k * (k + 1), "n={n}");
        assert!(c.x().len() >= n * n / 4, "quadratic lower bound");
        // y-axis stays linear (all projections disjoint)
        assert_eq!(c.y().len(), n);
    }

    #[test]
    fn empty_scene() {
        let c = CString::from_scene(&be2d_geometry::Scene::new(5, 5).unwrap());
        assert_eq!(c.segment_count(), 0);
    }

    #[test]
    fn display_contains_both_axes() {
        let scene = SceneBuilder::new(50, 50)
            .object("A", (0, 10, 5, 15))
            .build()
            .unwrap();
        assert_eq!(
            CString::from_scene(&scene).to_string(),
            "(A#0[0, 10), A#0[5, 15))"
        );
    }
}
