//! The 2D B-string of Lee, Yang & Chen (1992).
//!
//! The B-string drops cutting entirely: each object contributes a begin
//! and an end boundary symbol per axis, and the only spatial operator kept
//! is `=`, asserting that two adjacent symbols project to the *same*
//! coordinate. Symbols not joined by `=` are implicitly ordered.
//!
//! The 2D BE-string (the paper's contribution, `be2d-core`) inverts this
//! convention: it marks *distinct* projections with a dummy object instead
//! of marking *identical* ones with an operator — which is what makes
//! rotation/reflection retrieval a pure string reversal and removes
//! operators from the LCS alphabet.

use be2d_geometry::{ObjectClass, Scene};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One element of a B-string: a boundary symbol, possibly `=`-joined to
/// its predecessor.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BSymbol {
    /// The object class.
    pub class: ObjectClass,
    /// `true` for a begin boundary, `false` for an end boundary.
    pub is_begin: bool,
    /// Whether this symbol projects to the same coordinate as the previous
    /// symbol (rendered as a leading `=`).
    pub equals_previous: bool,
}

impl fmt::Display for BSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.equals_previous {
            f.write_str("= ")?;
        }
        write!(
            f,
            "{}_{}",
            self.class,
            if self.is_begin { "b" } else { "e" }
        )
    }
}

/// A 2D B-string: per-axis sorted boundary symbols with `=` markers.
///
/// # Example
///
/// ```
/// use be2d_strings2d::BString;
/// use be2d_geometry::SceneBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scene = SceneBuilder::new(100, 100)
///     .object("A", (10, 50, 10, 50))
///     .object("B", (50, 90, 50, 90))
///     .build()?;
/// let b = BString::from_scene(&scene);
/// // A_e and B_b coincide on both axes
/// assert_eq!(b.render_x(), "A_b A_e = B_b B_e");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BString {
    x: Vec<BSymbol>,
    y: Vec<BSymbol>,
}

impl BString {
    /// Builds the 2D B-string of a scene.
    ///
    /// Boundary events are sorted per axis by `(coordinate, end-before-
    /// begin, class)` — the same canonical order the BE-string uses — and
    /// `=` joins symbols with identical coordinates.
    #[must_use]
    pub fn from_scene(scene: &Scene) -> BString {
        BString {
            x: Self::axis(scene, true),
            y: Self::axis(scene, false),
        }
    }

    fn axis(scene: &Scene, x_axis: bool) -> Vec<BSymbol> {
        let mut events: Vec<(i64, u8, &ObjectClass, bool)> = Vec::with_capacity(2 * scene.len());
        for o in scene {
            let iv = if x_axis { o.mbr().x() } else { o.mbr().y() };
            events.push((iv.begin(), 1, o.class(), true));
            events.push((iv.end(), 0, o.class(), false));
        }
        events.sort_by(|a, b| {
            (a.0, a.1)
                .cmp(&(b.0, b.1))
                .then_with(|| a.2.name().cmp(b.2.name()))
        });
        let mut out = Vec::with_capacity(events.len());
        let mut prev_coord: Option<i64> = None;
        for (coord, _, class, is_begin) in events {
            out.push(BSymbol {
                class: class.clone(),
                is_begin,
                equals_previous: prev_coord == Some(coord),
            });
            prev_coord = Some(coord);
        }
        out
    }

    /// X-axis symbols.
    #[must_use]
    pub fn x(&self) -> &[BSymbol] {
        &self.x
    }

    /// Y-axis symbols.
    #[must_use]
    pub fn y(&self) -> &[BSymbol] {
        &self.y
    }

    /// Total storage units: `2n` boundary symbols per axis plus one `=`
    /// operator per coincident pair.
    #[must_use]
    pub fn symbol_count(&self) -> usize {
        let count = |v: &[BSymbol]| v.len() + v.iter().filter(|s| s.equals_previous).count();
        count(&self.x) + count(&self.y)
    }

    /// Renders the x-axis string.
    #[must_use]
    pub fn render_x(&self) -> String {
        Self::render(&self.x)
    }

    /// Renders the y-axis string.
    #[must_use]
    pub fn render_y(&self) -> String {
        Self::render(&self.y)
    }

    fn render(v: &[BSymbol]) -> String {
        v.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for BString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.render_x(), self.render_y())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use be2d_geometry::SceneBuilder;

    #[test]
    fn disjoint_objects_have_no_equals() {
        let scene = SceneBuilder::new(100, 100)
            .object("A", (0, 10, 0, 10))
            .object("B", (20, 30, 20, 30))
            .build()
            .unwrap();
        let b = BString::from_scene(&scene);
        assert_eq!(b.render_x(), "A_b A_e B_b B_e");
        assert_eq!(b.symbol_count(), 8);
    }

    #[test]
    fn coincident_boundaries_get_equals() {
        let scene = SceneBuilder::new(100, 100)
            .object("A", (10, 50, 0, 10))
            .object("B", (50, 90, 0, 10))
            .build()
            .unwrap();
        let b = BString::from_scene(&scene);
        assert_eq!(b.render_x(), "A_b A_e = B_b B_e");
        // y: identical projections: B joins A at both boundaries
        assert_eq!(b.render_y(), "A_b = B_b A_e = B_e");
        assert_eq!(b.symbol_count(), (4 + 1) + (4 + 2));
    }

    #[test]
    fn storage_is_linear_even_with_overlap() {
        // the pile that blows the G-string up quadratically stays 2n here
        let mut scene = be2d_geometry::Scene::new(1000, 1000).unwrap();
        for i in 0..10i64 {
            scene
                .add(
                    be2d_geometry::ObjectClass::new("X"),
                    be2d_geometry::Rect::new(i, 500 + i, i, 500 + i).unwrap(),
                )
                .unwrap();
        }
        let b = BString::from_scene(&scene);
        assert_eq!(b.symbol_count(), 2 * 20, "2n per axis, no coincidences");
    }

    #[test]
    fn empty_scene() {
        let b = BString::from_scene(&be2d_geometry::Scene::new(5, 5).unwrap());
        assert_eq!(b.symbol_count(), 0);
        assert_eq!(b.to_string(), "(, )");
    }

    #[test]
    fn ends_sort_before_begins_at_same_coordinate() {
        let scene = SceneBuilder::new(100, 10)
            .object("A", (0, 50, 0, 10))
            .object("B", (50, 100, 0, 10))
            .build()
            .unwrap();
        let b = BString::from_scene(&scene);
        // at x=50: A_e then B_b, joined by '='
        assert_eq!(b.render_x(), "A_b A_e = B_b B_e");
    }
}
