//! # be2d-strings2d — the 2-D string family baselines
//!
//! From-scratch implementations of the spatial-relation models the paper
//! compares itself against (§2 of Wang 2001):
//!
//! * [`TwoDString`] — Chang, Shi & Yan's original 2-D string (1987):
//!   symbolic projection of object *centroids* with the `<`/`=` operators;
//! * [`BString`] — Lee, Yang & Chen's 2D B-string (1992): begin/end
//!   boundary symbols with the single `=` operator, no cutting;
//! * [`GString`] — Chang, Jungert & Li's generalized 2D G-string (1988):
//!   objects are **cut along every MBR boundary** of every object, then
//!   described with global operators — storage blows up to O(n²) segments;
//! * [`CString`] — Lee & Hsu's 2D C-string (1990): minimal cutting at the
//!   end boundary of the *dominating* object only; still O(n²) worst case;
//! * [`typed`] — the type-0/1/2 similarity framework shared by the whole
//!   family: build the compatibility graph of object assignments and find
//!   a **maximum clique** ([`clique`]), which is NP-complete — the cost
//!   the BE-string's O(mn) LCS avoids.
//!
//! These exist to regenerate the comparative claims: storage blow-up from
//! cutting (experiment E2), clique-versus-LCS matching cost (E3) and
//! retrieval behaviour on partial matches (E4).
//!
//! # Example
//!
//! ```
//! use be2d_strings2d::{GString, CString, BString, TwoDString};
//! use be2d_geometry::SceneBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scene = SceneBuilder::new(100, 100)
//!     .object("A", (10, 60, 10, 60))
//!     .object("B", (40, 90, 40, 90))
//!     .build()?;
//! let g = GString::from_scene(&scene);
//! let c = CString::from_scene(&scene);
//! // the partial overlap forces G- and C-string to cut; C cuts less
//! assert!(c.segment_count() <= g.segment_count());
//! assert!(BString::from_scene(&scene).symbol_count() <= g.segment_count() * 2);
//! assert_eq!(TwoDString::from_scene(&scene).symbol_count(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bstring;
/// Exact maximum-clique search (Bron–Kerbosch with pivoting).
pub mod clique;
mod cstring;
mod cutting;
mod gstring;
mod twod_string;
/// The type-0/1/2 similarity framework of the 2-D string family.
pub mod typed;

pub use bstring::BString;
pub use clique::{max_clique, Graph};
pub use cstring::CString;
pub use cutting::{AxisSegments, Segment};
pub use gstring::GString;
pub use twod_string::TwoDString;
pub use typed::{typed_similarity, SimilarityType, TypedSimilarity};
