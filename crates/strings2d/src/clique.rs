//! Exact maximum-clique search — the computational core of the type-0/1/2
//! similarity framework.
//!
//! Every model in the 2-D string family evaluates similarity by building a
//! compatibility graph over object assignments and finding its **maximum
//! complete subgraph** (§2/§4 of Wang 2001, citing Sipser for
//! NP-completeness). We implement Bron–Kerbosch with pivoting and a
//! best-so-far bound over bitset adjacency rows — a competent exact
//! solver, so the E3 benchmark compares the LCS against a fair baseline
//! rather than a strawman.

use serde::{Deserialize, Serialize};

/// An undirected graph over vertices `0..n` with bitset adjacency rows.
///
/// # Example
///
/// ```
/// use be2d_strings2d::{Graph, max_clique};
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(0, 2);
/// g.add_edge(2, 3);
/// let clique = max_clique(&g);
/// assert_eq!(clique, vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    words: usize,
    adj: Vec<u64>,
    edges: usize,
}

impl Graph {
    /// Creates an edgeless graph with `n` vertices.
    #[must_use]
    pub fn new(n: usize) -> Graph {
        let words = n.div_ceil(64);
        Graph {
            n,
            words,
            adj: vec![0; n * words],
            edges: 0,
        }
    }

    /// Number of vertices.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no vertices.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of undirected edges.
    #[must_use]
    pub const fn edge_count(&self) -> usize {
        self.edges
    }

    /// Adds the undirected edge `{u, v}`. Self-loops and duplicates are
    /// ignored.
    ///
    /// # Panics
    ///
    /// Panics when `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "vertex out of range");
        if u == v || self.has_edge(u, v) {
            return;
        }
        self.adj[u * self.words + v / 64] |= 1 << (v % 64);
        self.adj[v * self.words + u / 64] |= 1 << (u % 64);
        self.edges += 1;
    }

    /// Whether the edge `{u, v}` exists.
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n && v < self.n && self.adj[u * self.words + v / 64] & (1 << (v % 64)) != 0
    }

    /// Degree of vertex `v`.
    #[must_use]
    pub fn degree(&self, v: usize) -> usize {
        self.row(v).iter().map(|w| w.count_ones() as usize).sum()
    }

    fn row(&self, v: usize) -> &[u64] {
        &self.adj[v * self.words..(v + 1) * self.words]
    }
}

/// A set of vertices as a bit vector, sized to the graph.
#[derive(Clone)]
struct VSet {
    words: Vec<u64>,
}

impl VSet {
    fn empty(words: usize) -> VSet {
        VSet {
            words: vec![0; words],
        }
    }

    fn full(n: usize, words: usize) -> VSet {
        let mut s = VSet {
            words: vec![u64::MAX; words],
        };
        let spare = words * 64 - n;
        if spare > 0 && words > 0 {
            s.words[words - 1] >>= spare;
        }
        s
    }

    fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn remove(&mut self, v: usize) {
        self.words[v / 64] &= !(1 << (v % 64));
    }

    fn insert(&mut self, v: usize) {
        self.words[v / 64] |= 1 << (v % 64);
    }

    fn intersect_row(&self, row: &[u64]) -> VSet {
        VSet {
            words: self.words.iter().zip(row).map(|(a, b)| a & b).collect(),
        }
    }

    fn intersect_row_count(&self, row: &[u64]) -> usize {
        self.words
            .iter()
            .zip(row)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// Finds one maximum clique, returned as a sorted vertex list.
///
/// Exact Bron–Kerbosch with pivoting; exponential in the worst case —
/// which is exactly the point of experiment E3. Practical up to a few
/// hundred vertices on the compatibility graphs the type-i framework
/// produces.
#[must_use]
pub fn max_clique(g: &Graph) -> Vec<usize> {
    let words = g.n.div_ceil(64);
    let mut best: Vec<usize> = Vec::new();
    let mut r: Vec<usize> = Vec::new();
    let p = VSet::full(g.n, words);
    let x = VSet::empty(words);
    bron_kerbosch(g, &mut r, p, x, &mut best);
    best.sort_unstable();
    best
}

fn bron_kerbosch(g: &Graph, r: &mut Vec<usize>, p: VSet, mut x: VSet, best: &mut Vec<usize>) {
    if p.is_empty() && x.is_empty() {
        if r.len() > best.len() {
            *best = r.clone();
        }
        return;
    }
    // branch-and-bound: even taking all of P cannot beat the incumbent
    if r.len() + p.count() <= best.len() {
        return;
    }
    // pivot: vertex of P ∪ X with the most neighbours in P
    let pivot = p
        .iter()
        .chain(x.iter())
        .max_by_key(|&u| p.intersect_row_count(g.row(u)))
        .expect("P ∪ X non-empty");
    let mut candidates = p.clone();
    for w in 0..candidates.words.len() {
        candidates.words[w] &= !g.row(pivot)[w];
    }
    let mut p = p;
    for v in candidates.iter() {
        r.push(v);
        bron_kerbosch(
            g,
            r,
            p.intersect_row(g.row(v)),
            x.intersect_row(g.row(v)),
            best,
        );
        r.pop();
        p.remove(v);
        x.insert(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        assert_eq!(max_clique(&Graph::new(0)), Vec::<usize>::new());
    }

    #[test]
    fn singleton_and_edgeless() {
        assert_eq!(max_clique(&Graph::new(1)), vec![0]);
        // edgeless graph: any single vertex is a maximum clique
        assert_eq!(max_clique(&Graph::new(5)).len(), 1);
    }

    #[test]
    fn triangle_plus_tail() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        assert_eq!(max_clique(&g), vec![0, 1, 2]);
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn complete_graph() {
        let n = 20;
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        assert_eq!(max_clique(&g).len(), n);
        assert_eq!(g.edge_count(), n * (n - 1) / 2);
    }

    #[test]
    fn bipartite_graph_max_clique_is_two() {
        let mut g = Graph::new(8);
        for u in 0..4 {
            for v in 4..8 {
                g.add_edge(u, v);
            }
        }
        assert_eq!(max_clique(&g).len(), 2);
    }

    #[test]
    fn two_cliques_picks_larger() {
        let mut g = Graph::new(9);
        for u in 0..4usize {
            for v in (u + 1)..4 {
                g.add_edge(u, v);
            }
        }
        for u in 4..9usize {
            for v in (u + 1)..9 {
                g.add_edge(u, v);
            }
        }
        assert_eq!(max_clique(&g), vec![4, 5, 6, 7, 8]);
    }

    #[test]
    fn duplicate_edges_and_self_loops_ignored() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn degree() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn crossing_word_boundaries() {
        // vertices beyond 64 exercise the multi-word bitset paths
        let n = 130;
        let mut g = Graph::new(n);
        // clique on {60..70}
        for u in 60..70usize {
            for v in (u + 1)..70 {
                g.add_edge(u, v);
            }
        }
        g.add_edge(0, 129);
        assert_eq!(max_clique(&g), (60..70).collect::<Vec<_>>());
    }

    #[test]
    fn clique_result_is_actually_a_clique() {
        // pseudo-random graph, verify the result pairwise
        let n = 40usize;
        let mut g = Graph::new(n);
        let mut state = 0x243f_6a88_85a3_08d3u64;
        for u in 0..n {
            for v in (u + 1)..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state >> 62 == 0b11 {
                    g.add_edge(u, v);
                }
            }
        }
        let clique = max_clique(&g);
        for (i, &u) in clique.iter().enumerate() {
            for &v in &clique[i + 1..] {
                assert!(g.has_edge(u, v), "{u} and {v} not adjacent");
            }
        }
        assert!(!clique.is_empty());
    }

    #[test]
    #[should_panic(expected = "vertex out of range")]
    fn add_edge_out_of_range_panics() {
        Graph::new(2).add_edge(0, 5);
    }
}
