//! The 2D G-string of Chang, Jungert & Li (1988).
//!
//! The generalized 2-D string cuts **every** object along the MBR
//! boundaries of **every** object, so that any two resulting segments are
//! related by one of the *global* operators only: `<` (disjoint), `|`
//! (edge-to-edge) or `=` (same projection). This unifies the relation
//! vocabulary but, as §2 of Wang 2001 notes, generates superfluous cut
//! objects — up to O(n²) segments.

use crate::cutting::{cut_at_all_boundaries, AxisSegments};
use be2d_geometry::Scene;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 2D G-string: the fully-cut symbolic projection of a scene.
///
/// # Example
///
/// ```
/// use be2d_strings2d::GString;
/// use be2d_geometry::SceneBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // two objects overlapping on x: both are cut at each other's
/// // boundaries -> 2 segments each on x, whole on y.
/// let scene = SceneBuilder::new(100, 100)
///     .object("A", (0, 20, 0, 10))
///     .object("B", (10, 30, 20, 30))
///     .build()?;
/// let g = GString::from_scene(&scene);
/// assert_eq!(g.x().len(), 4);
/// assert_eq!(g.y().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GString {
    x: AxisSegments,
    y: AxisSegments,
}

impl GString {
    /// Builds the G-string of a scene by cutting along all boundaries on
    /// both axes.
    #[must_use]
    pub fn from_scene(scene: &Scene) -> GString {
        let xs: Vec<_> = scene
            .iter()
            .map(|o| (o.id(), o.class().clone(), o.mbr().x()))
            .collect();
        let ys: Vec<_> = scene
            .iter()
            .map(|o| (o.id(), o.class().clone(), o.mbr().y()))
            .collect();
        GString {
            x: AxisSegments::new(cut_at_all_boundaries(&xs)),
            y: AxisSegments::new(cut_at_all_boundaries(&ys)),
        }
    }

    /// Segments of the x-axis.
    #[must_use]
    pub fn x(&self) -> &AxisSegments {
        &self.x
    }

    /// Segments of the y-axis.
    #[must_use]
    pub fn y(&self) -> &AxisSegments {
        &self.y
    }

    /// Total number of segments over both axes — the storage metric the
    /// paper contrasts with the BE-string's `≤ 4n+1` symbols (experiment
    /// E2).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.x.len() + self.y.len()
    }
}

impl fmt::Display for GString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use be2d_geometry::{ObjectClass, Rect, SceneBuilder};

    #[test]
    fn disjoint_scene_has_2n_segments() {
        let scene = SceneBuilder::new(100, 100)
            .object("A", (0, 10, 0, 10))
            .object("B", (20, 30, 20, 30))
            .object("C", (40, 50, 40, 50))
            .build()
            .unwrap();
        let g = GString::from_scene(&scene);
        assert_eq!(g.segment_count(), 6);
    }

    #[test]
    fn overlap_chain_explodes_quadratically() {
        // pairwise overlapping chain on x, disjoint on y
        let mut scene = be2d_geometry::Scene::new(1000, 1000).unwrap();
        let n = 16i64;
        for i in 0..n {
            scene
                .add(
                    ObjectClass::new("X"),
                    Rect::new(i * 10, i * 10 + 15, i * 20, i * 20 + 5).unwrap(),
                )
                .unwrap();
        }
        let g = GString::from_scene(&scene);
        // interior objects are cut by two neighbours' boundaries each on x
        assert!(g.x().len() >= 3 * (n as usize) - 4, "got {}", g.x().len());
        assert_eq!(g.y().len(), n as usize);
    }

    #[test]
    fn full_pile_is_quadratic() {
        // all n objects pairwise overlapping: O(n^2) segments
        let mut scene = be2d_geometry::Scene::new(1000, 1000).unwrap();
        let n = 10i64;
        for i in 0..n {
            scene
                .add(
                    ObjectClass::new("X"),
                    Rect::new(i, 500 + i, i, 500 + i).unwrap(),
                )
                .unwrap();
        }
        let g = GString::from_scene(&scene);
        // every object contains n-1 interior boundaries -> n segments each
        let n = n as usize;
        assert_eq!(g.x().len(), n * n, "expected quadratic blow-up for n={n}");
    }

    #[test]
    fn empty_scene() {
        let g = GString::from_scene(&be2d_geometry::Scene::new(5, 5).unwrap());
        assert_eq!(g.segment_count(), 0);
        assert!(g.x().is_empty());
    }

    #[test]
    fn display_contains_both_axes() {
        let scene = SceneBuilder::new(50, 50)
            .object("A", (0, 10, 5, 15))
            .build()
            .unwrap();
        let g = GString::from_scene(&scene);
        assert_eq!(g.to_string(), "(A#0[0, 10), A#0[5, 15))");
    }
}
