//! Property-based tests for the 2-D string family baselines.

use be2d_geometry::{ObjectClass, Rect, Scene};
use be2d_strings2d::{
    max_clique, typed_similarity, BString, CString, GString, Graph, SimilarityType, TwoDString,
};
use proptest::prelude::*;

const CLASS_NAMES: [&str; 4] = ["A", "B", "C", "D"];

fn arb_rect(w: i64, h: i64) -> impl Strategy<Value = Rect> {
    (0..w, 0..h).prop_flat_map(move |(xb, yb)| {
        (1..=w - xb, 1..=h - yb)
            .prop_map(move |(xw, yw)| Rect::new(xb, xb + xw, yb, yb + yw).expect("non-empty"))
    })
}

fn arb_scene(max_objects: usize) -> impl Strategy<Value = Scene> {
    (10i64..80, 10i64..80).prop_flat_map(move |(w, h)| {
        prop::collection::vec((arb_rect(w, h), 0..CLASS_NAMES.len()), 0..max_objects).prop_map(
            move |objs| {
                let mut scene = Scene::new(w, h).expect("positive frame");
                for (rect, class_idx) in objs {
                    scene
                        .add(ObjectClass::new(CLASS_NAMES[class_idx]), rect)
                        .expect("in-frame");
                }
                scene
            },
        )
    })
}

proptest! {
    /// C-string cutting never produces more segments than G-string
    /// cutting, and both tile each object's projection exactly.
    #[test]
    fn cutting_hierarchy_and_coverage(scene in arb_scene(10)) {
        let g = GString::from_scene(&scene);
        let c = CString::from_scene(&scene);
        prop_assert!(c.x().len() <= g.x().len());
        prop_assert!(c.y().len() <= g.y().len());
        // every axis has at least one segment per object
        prop_assert!(g.x().len() >= scene.len());
        prop_assert!(c.x().len() >= scene.len());

        // segments of each object tile its original interval
        for (segments, axis_of) in [
            (g.x(), 0usize), (g.y(), 1), (c.x(), 0), (c.y(), 1),
        ] {
            for obj in &scene {
                let iv = if axis_of == 0 { obj.mbr().x() } else { obj.mbr().y() };
                let mut parts: Vec<_> = segments
                    .segments()
                    .iter()
                    .filter(|s| s.id == obj.id())
                    .map(|s| (s.extent.begin(), s.extent.end()))
                    .collect();
                parts.sort_unstable();
                prop_assert_eq!(parts.first().expect("covered").0, iv.begin());
                prop_assert_eq!(parts.last().expect("covered").1, iv.end());
                for w in parts.windows(2) {
                    prop_assert_eq!(w[0].1, w[1].0, "tiling gap");
                }
            }
        }
    }

    /// Storage comparison invariants: the B-string and 2-D string are
    /// linear in n, while the cut models are at least as large as the
    /// B-string's boundary count per axis.
    #[test]
    fn storage_relationships(scene in arb_scene(10)) {
        let n = scene.len();
        let b = BString::from_scene(&scene);
        let two_d = TwoDString::from_scene(&scene);
        prop_assert_eq!(two_d.symbol_count(), 2 * n);
        prop_assert!(b.symbol_count() >= 4 * n * usize::from(n > 0));
        prop_assert!(b.symbol_count() <= 4 * n + 2 * 2 * n, "2n symbols + ≤2n '=' per axis");
        let g = GString::from_scene(&scene);
        prop_assert!(g.segment_count() >= 2 * n);
    }

    /// Type-i similarity contracts: self-match is full, match counts obey
    /// the type hierarchy, and assignments are injective and
    /// class-consistent.
    #[test]
    fn typed_similarity_contracts(q in arb_scene(6), d in arb_scene(6)) {
        let t0 = typed_similarity(&q, &d, SimilarityType::Type0);
        let t1 = typed_similarity(&q, &d, SimilarityType::Type1);
        let t2 = typed_similarity(&q, &d, SimilarityType::Type2);
        prop_assert!(t2.matched <= t1.matched, "type-2 stricter than type-1");
        prop_assert!(t1.matched <= t0.matched, "type-1 stricter than type-0");
        prop_assert!(t0.matched <= q.len().min(d.len()));

        for sim in [&t0, &t1, &t2] {
            prop_assert_eq!(sim.matched, sim.assignment.len());
            let mut qs: Vec<_> = sim.assignment.iter().map(|(a, _)| a.index()).collect();
            let mut ds: Vec<_> = sim.assignment.iter().map(|(_, b)| b.index()).collect();
            qs.sort_unstable();
            qs.dedup();
            ds.sort_unstable();
            ds.dedup();
            prop_assert_eq!(qs.len(), sim.assignment.len(), "query side injective");
            prop_assert_eq!(ds.len(), sim.assignment.len(), "database side injective");
            for (qi, dj) in &sim.assignment {
                prop_assert_eq!(
                    q.objects()[qi.index()].class(),
                    d.objects()[dj.index()].class()
                );
            }
        }

        // self similarity matches everything at every type
        for ty in SimilarityType::ALL {
            prop_assert_eq!(typed_similarity(&q, &q, ty).matched, q.len(), "{}", ty);
        }
    }

    /// Operator rendering is total and well-formed: one operator between
    /// every consecutive segment pair, and G-string output never needs
    /// the local overlap operator (cutting removed all partial overlaps).
    #[test]
    fn operator_rendering_well_formed(scene in arb_scene(8)) {
        for (axis, is_g) in [
            (GString::from_scene(&scene).x().clone(), true),
            (CString::from_scene(&scene).x().clone(), false),
        ] {
            let rendered = axis.render_with_operators();
            if axis.is_empty() {
                prop_assert!(rendered.is_empty());
                continue;
            }
            let ops = rendered.matches(['<', '|', '=', '[', ']', '%', '/']).count();
            prop_assert_eq!(ops, axis.len() - 1, "one operator per adjacent pair");
            if is_g {
                prop_assert!(
                    !rendered.contains('/'),
                    "G-string segments never partially overlap: {}",
                    rendered
                );
            }
        }
    }

    /// The clique solver returns an actual clique that no vertex extends.
    #[test]
    fn clique_is_maximal(edges in prop::collection::vec((0usize..24, 0usize..24), 0..120)) {
        let mut g = Graph::new(24);
        for (u, v) in edges {
            if u != v {
                g.add_edge(u, v);
            }
        }
        let clique = max_clique(&g);
        for (i, &u) in clique.iter().enumerate() {
            for &v in &clique[i + 1..] {
                prop_assert!(g.has_edge(u, v));
            }
        }
        // maximality: no vertex is adjacent to all clique members
        for w in 0..g.len() {
            if clique.contains(&w) {
                continue;
            }
            let extends = clique.iter().all(|&u| g.has_edge(u, w));
            prop_assert!(!extends, "vertex {} extends the clique", w);
        }
    }
}
